//! Library implementations of the BENCH_*-producing figures.
//!
//! These figures used to live only inside the `figures` bench target; they
//! are library functions so the `fleet` experiment harness and the bench
//! target regenerate each figure through the **same code path** — a fleet
//! run reproduces the checked-in `BENCH_*.json` files bit-for-bit because
//! it *is* the figure, not a reimplementation of it.  All of them honour
//! `KAIROS_FIG_FAST=1` (shorter traces for CI smoke runs) and write their
//! JSON next to the workspace root.

use kairos_baselines::{static_overprovision, AutoscalerOptions, ReactiveAutoscaler};
use kairos_core::{
    paper_variant_planner, InferenceService, KairosScheduler, ReplanTrigger, ServingOptions,
    ServingSystem,
};
use kairos_models::{
    calibration::paper_calibration, ec2, Config, FailureDomain, FaultEvent, FaultProcess,
    ModelKind, Offering, OfferingCatalog, PoolSpec, PreemptionProcess, PriceTrace, TraceMarket,
    VariantCatalog,
};
use kairos_sim::{
    run_trace, BatchingOptions, ClusterSpec, FcfsScheduler, Scheduler, ServiceSpec, ShardedEngine,
    SimEngine, SimReport, SimulationOptions,
};
use kairos_workload::{
    ArrivalProcess, BatchSizeDistribution, MixSpec, MixedTraceSpec, PhasedArrival, Query, TimeUs,
    Trace,
};

/// Prints a figure section banner (shared by every experiment driver).
pub fn section(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Whether the fast (CI smoke) figure mode is requested.
fn fast_mode() -> bool {
    std::env::var("KAIROS_FIG_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Integrates a piecewise-constant `(time, cost)` step function over
/// `[0, duration_us]`.
pub fn mean_cost(mut steps: Vec<(TimeUs, f64)>, duration_us: TimeUs) -> f64 {
    steps.sort_by_key(|(t, _)| *t);
    let mut total = 0.0;
    for (i, &(t, cost)) in steps.iter().enumerate() {
        let end = steps.get(i + 1).map(|&(t, _)| t).unwrap_or(duration_us);
        let end = end.min(duration_us);
        if end > t {
            total += cost * (end - t) as f64;
        }
    }
    total / duration_us as f64
}

/// One scheme's outcome of the load-shift experiment.
struct LoadShiftRow {
    scheme: &'static str,
    violation_fraction: f64,
    /// Time to restore a <=15 % windowed violation rate after the boundary.
    ttr_us: Option<TimeUs>,
    /// Time-weighted mean of the target cluster cost over the trace
    /// (reconfiguration-target costs; graceful-drain overlap excluded).
    mean_cost_per_hour: f64,
}

/// Fig. 12 (online) — the serving loop reacting to a 40 -> 100 QPS step
/// change: controller-in-the-loop reconfiguration vs a frozen static plan,
/// 2x static overprovisioning, and an HPA-style reactive homogeneous
/// autoscaler.  Records the QoS-violation rate, the time-to-recover across
/// the phase boundary, and the time-weighted cluster cost, and writes them
/// to `BENCH_load_shift.json` at the workspace root.
pub fn figure12_load_shift() {
    let fast = fast_mode();
    let phase_s = if fast { 3.0 } else { 5.0 };
    let (low_qps, high_qps, budget) = (40.0, 100.0, 2.5);
    section("Figure 12 (online): dynamic reconfiguration across a load shift (RM2)");
    println!(
        "{low_qps} -> {high_qps} QPS step at t={phase_s}s, budget {budget} $/hr, \
         recovery = windowed violations <= 15 %"
    );

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Rm2;
    let service = ServiceSpec::new(model, latency.clone());
    let workload = PhasedArrival::step_change(
        low_qps,
        high_qps,
        BatchSizeDistribution::production_default(),
        phase_s,
        phase_s,
        4242,
    );
    let trace = workload.generate();
    let boundary_us = workload.boundaries_us()[1];
    let duration_us = workload.total_duration_us();
    let (bucket_us, tol) = (500_000, 0.15);
    let ttr = |report: &SimReport| report.time_to_recover(boundary_us, bucket_us, tol);

    // Controller in the loop, warm monitor, demand-aware replanning.
    let mut system = ServingSystem::new(
        pool.clone(),
        model,
        Some(latency.clone()),
        ServingOptions::default()
            .budget(budget)
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let initial = system
        .plan_for_demand(low_qps)
        .expect("priors allow planning");
    let outcome = system.run(&initial, &service, &trace);
    let mut kairos_costs = vec![(0, initial.cost(&pool))];
    kairos_costs.extend(
        outcome
            .reconfigs
            .iter()
            .map(|r| (r.at_us, r.target.cost(&pool))),
    );
    let kairos_row = LoadShiftRow {
        scheme: "KAIROS(loop)",
        violation_fraction: outcome.report.violation_fraction(),
        ttr_us: ttr(&outcome.report),
        mean_cost_per_hour: mean_cost(kairos_costs, duration_us),
    };

    // Frozen static plan: same initial configuration, same scheduler family.
    let static_report = run_trace(
        &pool,
        &initial,
        &service,
        &trace,
        &mut KairosScheduler::with_priors(model, &latency),
        &SimulationOptions::default(),
    );
    let static_row = LoadShiftRow {
        scheme: "STATIC(plan)",
        violation_fraction: static_report.violation_fraction(),
        ttr_us: ttr(&static_report),
        mean_cost_per_hour: initial.cost(&pool),
    };

    // Static overprovisioning: 2x the budget of homogeneous base capacity.
    let over = static_overprovision(&pool, budget, 2.0);
    let over_report = run_trace(
        &pool,
        &over,
        &service,
        &trace,
        &mut KairosScheduler::with_priors(model, &latency),
        &SimulationOptions::default(),
    );
    let over_row = LoadShiftRow {
        scheme: "STATIC(2x)",
        violation_fraction: over_report.violation_fraction(),
        ttr_us: ttr(&over_report),
        mean_cost_per_hour: over.cost(&pool),
    };

    // Reactive homogeneous autoscaler on backlog pressure.
    let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        ..Default::default()
    });
    let reactive = scaler.run(&pool, 2, &service, &trace);
    let base_price = pool.price(pool.base_index());
    let mut count = 2i64;
    let mut reactive_costs = vec![(0, count as f64 * base_price)];
    for &(t, delta) in &reactive.actions {
        count += i64::from(delta);
        reactive_costs.push((t, count as f64 * base_price));
    }
    let reactive_row = LoadShiftRow {
        scheme: "REACTIVE(homo)",
        violation_fraction: reactive.report.violation_fraction(),
        ttr_us: ttr(&reactive.report),
        mean_cost_per_hour: mean_cost(reactive_costs, duration_us),
    };

    let rows = [kairos_row, static_row, over_row, reactive_row];
    println!(
        "\n{:<16}{:>14}{:>18}{:>18}",
        "scheme", "violations %", "recover (ms)", "mean cost $/hr"
    );
    for row in &rows {
        let rec = row
            .ttr_us
            .map(|t| format!("{:.0}", t as f64 / 1000.0))
            .unwrap_or_else(|| "never".into());
        println!(
            "{:<16}{:>14.2}{:>18}{:>18.3}",
            row.scheme,
            row.violation_fraction * 100.0,
            rec,
            row.mean_cost_per_hour
        );
    }
    println!(
        "--> KAIROS reconfigured {} time(s); final active cluster {} ({:.3} $/hr)",
        outcome.reconfigs.len(),
        outcome.final_active,
        outcome.final_active.cost(&pool)
    );

    // Record the outcome next to the other BENCH_* baselines.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load_shift.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig12_load_shift/{}\",\"violation_fraction\":{:.4},\
                 \"ttr_us\":{},\"mean_cost_per_hour\":{:.4}}}",
                row.scheme,
                row.violation_fraction,
                row.ttr_us
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into()),
                row.mean_cost_per_hour
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_load_shift.json"),
        Err(e) => println!("--> could not write BENCH_load_shift.json: {e}"),
    }
}

/// Multi-model serving — a 3-model mix (NCF + RM2 + WND) through the
/// `InferenceService` facade under **one shared budget**, vs three isolated
/// single-model deployments at the same total budget (each frozen at an
/// equal share).  Records per-scheme QoS-violation rate and time-weighted
/// target-cluster cost to `BENCH_multimodel.json`.
pub fn figure_multimodel() {
    let fast = fast_mode();
    let duration_s = if fast { 4.0 } else { 8.0 };
    let budget = 6.0;
    let total_qps = 180.0;
    section("Multi-model serving: shared budget vs isolated deployments (NCF + RM2 + WND)");
    println!(
        "{total_qps} QPS mixed stream, {duration_s} s, global budget {budget} $/hr \
         (isolated: {:.2} $/hr each)",
        budget / 3.0
    );

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let models = [ModelKind::Ncf, ModelKind::Rm2, ModelKind::Wnd];
    let shares = [0.45, 0.2, 0.35];
    let mix = MixSpec::from_shares(
        &shares,
        &[
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
            BatchSizeDistribution::production_default(),
        ],
    );
    let trace = MixedTraceSpec {
        arrival: ArrivalProcess::Poisson {
            rate_qps: total_qps,
        },
        mix: mix.clone(),
        duration_s,
        seed: 2024,
    }
    .generate();
    let duration_us = (duration_s * 1e6) as TimeUs;
    let per_model_demand: Vec<f64> = shares.iter().map(|s| s * total_qps).collect();

    // Shared budget through the facade: per-model lanes, demand-weighted
    // water-filling, per-model replanning.
    let mut service = InferenceService::new(
        pool.clone(),
        &models,
        Some(latency.clone()),
        ServingOptions::default()
            .budget(budget)
            .replan_every(500_000)
            .provisioning_delay(300_000),
    );
    service.warm_monitors(&mix, 3_000, 7);
    let initial = service
        .plan_initial(&per_model_demand)
        .expect("priors allow planning");
    let specs = service.service_specs(&latency);
    let outcome = service.run(&initial, &specs, &trace);
    let mut model_costs: Vec<f64> = initial.pools.iter().map(|p| p.config.cost(&pool)).collect();
    let mut shared_steps = vec![(0, model_costs.iter().sum::<f64>())];
    for r in &outcome.reconfigs {
        model_costs[r.model.index()] = r.target.cost(&pool);
        shared_steps.push((r.at_us, model_costs.iter().sum::<f64>()));
    }
    let shared_cost = mean_cost(shared_steps, duration_us);
    let shared_viol = outcome.report.violation_fraction();

    // Isolated deployments: each model gets budget/3 and its own frozen
    // single-model plan over its own sub-stream.
    let mut iso_viol_num = 0usize;
    let mut iso_offered = 0usize;
    let mut iso_cost = 0.0;
    for (m, &kind) in models.iter().enumerate() {
        let sub: Vec<Query> = trace
            .queries
            .iter()
            .filter(|q| q.model.index() == m)
            .map(|q| Query::new(q.id, q.batch_size, q.arrival_us))
            .collect();
        let sub_trace = Trace::from_queries(sub);
        let mut system = ServingSystem::new(
            pool.clone(),
            kind,
            Some(latency.clone()),
            ServingOptions::default().budget(budget / 3.0),
        );
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
        let config = system
            .plan_for_demand(per_model_demand[m])
            .expect("priors allow planning");
        let report = run_trace(
            &pool,
            &config,
            &ServiceSpec::new(kind, latency.clone()),
            &sub_trace,
            &mut KairosScheduler::with_priors(kind, &latency),
            &SimulationOptions::default(),
        );
        iso_viol_num += report.violations();
        iso_offered += report.offered;
        iso_cost += config.cost(&pool);
    }
    let iso_viol = iso_viol_num as f64 / iso_offered.max(1) as f64;

    println!(
        "\n{:<22}{:>14}{:>18}",
        "scheme", "violations %", "mean cost $/hr"
    );
    println!(
        "{:<22}{:>14.2}{:>18.3}",
        "SHARED(facade)",
        shared_viol * 100.0,
        shared_cost
    );
    println!(
        "{:<22}{:>14.2}{:>18.3}",
        "ISOLATED(3x1/3)",
        iso_viol * 100.0,
        iso_cost
    );
    println!("\nPer-model breakdown under the shared budget:");
    println!(
        "{:<10}{:>10}{:>12}{:>14}{:>14}{:>16}",
        "model", "offered", "violations", "p99 (ms)", "QoS (ms)", "budget ($/hr)"
    );
    for (row, &kind) in outcome.per_model().iter().zip(models.iter()) {
        println!(
            "{:<10}{:>10}{:>12}{:>14.2}{:>14.1}{:>16.3}",
            kind.to_string(),
            row.offered,
            row.violations,
            row.p99_latency_us as f64 / 1000.0,
            kind.qos_us() as f64 / 1000.0,
            outcome.last_budget_split[row.model.index()]
        );
    }
    println!(
        "--> facade replanned {} time(s), {} reconfiguration(s)",
        outcome.replans,
        outcome.reconfigs.len()
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multimodel.json");
    let mut json = vec![
        format!(
            "{{\"name\":\"fig_multimodel/SHARED(facade)\",\"violation_fraction\":{shared_viol:.4},\
             \"mean_cost_per_hour\":{shared_cost:.4}}}"
        ),
        format!(
            "{{\"name\":\"fig_multimodel/ISOLATED(3x1/3)\",\"violation_fraction\":{iso_viol:.4},\
             \"mean_cost_per_hour\":{iso_cost:.4}}}"
        ),
    ];
    json.extend(
        outcome
            .per_model()
            .iter()
            .zip(models.iter())
            .map(|(row, kind)| {
                format!(
                    "{{\"name\":\"fig_multimodel/shared/{}\",\"violation_fraction\":{:.4},\
             \"p99_us\":{}}}",
                    kind,
                    row.violation_fraction(),
                    row.p99_latency_us
                )
            }),
    );
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_multimodel.json"),
        Err(e) => println!("--> could not write BENCH_multimodel.json: {e}"),
    }
}

/// One scheme's outcome of the spot-market experiment.
struct SpotRow {
    scheme: &'static str,
    violation_fraction: f64,
    /// Time-weighted billed dollars per hour (the engine's price integral).
    billed_per_hour: f64,
    preempted_instances: usize,
    requeued_queries: usize,
}

/// Cloud-market serving — KAIROS planning over purchase options (on-demand
/// plus deeply discounted preemptible spot) through a preemption storm, vs
/// the same loop restricted to on-demand capacity and reactive autoscalers
/// on either purchase option.  Records time-weighted billed $/hr, violation
/// percentage and preemption counts to `BENCH_spot.json`.
pub fn figure_spot() {
    let fast = fast_mode();
    let duration_s = if fast { 6.0 } else { 12.0 };
    let (rate_qps, budget) = (60.0, 2.5);
    let storms_us: Vec<u64> = vec![
        (duration_s * 0.4 * 1e6) as u64,
        (duration_s * 0.65 * 1e6) as u64,
    ];
    section("Spot market: purchase-option planning under a preemption storm (RM2)");
    println!(
        "{rate_qps} QPS steady, {duration_s} s, budget {budget} $/hr; GPU-spot storms at \
         {:?} s (200 ms notice), spot prices: g4dn 0.17, r5n 0.05 $/hr",
        storms_us
            .iter()
            .map(|&t| t as f64 / 1e6)
            .collect::<Vec<_>>()
    );

    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());
    let catalog = OfferingCatalog::new(vec![
        Offering::on_demand(ec2::g4dn_xlarge()),
        Offering::on_demand(ec2::r5n_large()),
        Offering::spot(
            ec2::g4dn_xlarge(),
            PriceTrace::constant(0.17),
            PreemptionProcess::At {
                notices_us: storms_us.clone(),
            },
        ),
        Offering::spot(
            ec2::r5n_large(),
            PriceTrace::constant(0.05),
            PreemptionProcess::None,
        ),
    ]);
    let market = std::sync::Arc::new(TraceMarket::new(catalog.clone()));
    let effective = catalog.effective_pool();
    let trace = kairos_workload::TraceSpec::production(rate_qps, duration_s, 4242).generate();

    let serving_options = ServingOptions::default()
        .budget(budget)
        .replan_every(500_000)
        .provisioning_delay(300_000)
        .spot_cooldown(2_000_000);
    let row_of = |scheme: &'static str, report: &SimReport| SpotRow {
        scheme,
        violation_fraction: report.violation_fraction(),
        billed_per_hour: report.billed_cost_per_hour(),
        preempted_instances: report.preempted_instances,
        requeued_queries: report.requeued_queries,
    };

    // KAIROS over the full market: plans a spot/on-demand mix, replans on
    // notices (cooldown prices the stormed offering out), re-buys after.
    let mut market_system = ServingSystem::with_market(
        catalog.clone(),
        market.clone(),
        model,
        Some(latency.clone()),
        serving_options,
    );
    market_system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let market_initial = market_system
        .plan_for_demand(rate_qps)
        .expect("priors allow planning");
    let market_outcome = market_system.run(&market_initial, &service, &trace);
    let market_row = row_of("KAIROS(market)", &market_outcome.report);

    // The same loop restricted to on-demand purchase options.
    let od_pool = PoolSpec::new(vec![ec2::g4dn_xlarge(), ec2::r5n_large()]);
    let mut od_system = ServingSystem::new(
        od_pool.clone(),
        model,
        Some(latency.clone()),
        serving_options,
    );
    od_system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let od_initial = od_system
        .plan_for_demand(rate_qps)
        .expect("priors allow planning");
    let od_outcome = od_system.run(&od_initial, &service, &trace);
    let od_row = row_of("KAIROS(od-only)", &od_outcome.report);

    // Reactive autoscaler riding the spot GPU discount: cheap until the
    // storm wipes its fleet, then it rebuys one instance at a time.
    let spot_scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        scale_type: Some(2),
        ..Default::default()
    });
    let spot_reactive =
        spot_scaler.run_with_market(&effective, 2, &service, &trace, Some(market.as_ref()));
    let spot_reactive_row = row_of("REACTIVE(spot)", &spot_reactive.report);

    // Reactive autoscaler on on-demand base capacity (storm-immune, pricey).
    let od_scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 300_000,
        ..Default::default()
    });
    let od_reactive =
        od_scaler.run_with_market(&effective, 2, &service, &trace, Some(market.as_ref()));
    let od_reactive_row = row_of("REACTIVE(od)", &od_reactive.report);

    let rows = [market_row, od_row, spot_reactive_row, od_reactive_row];
    println!(
        "\n{:<18}{:>14}{:>16}{:>12}{:>10}",
        "scheme", "violations %", "billed $/hr", "preempted", "requeued"
    );
    for row in &rows {
        println!(
            "{:<18}{:>14.2}{:>16.3}{:>12}{:>10}",
            row.scheme,
            row.violation_fraction * 100.0,
            row.billed_per_hour,
            row.preempted_instances,
            row.requeued_queries
        );
    }
    println!(
        "--> KAIROS(market): {} reconfiguration(s), {} market-triggered, \
         {} preemption notice(s); final active cluster {}",
        market_outcome.reconfigs.len(),
        market_outcome
            .reconfigs
            .iter()
            .filter(|r| r.trigger == ReplanTrigger::Market)
            .count(),
        market_outcome.report.preemption_notices,
        market_outcome.final_active
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spot.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig_spot/{}\",\"violation_fraction\":{:.4},\
                 \"billed_per_hour\":{:.4},\"preempted_instances\":{},\
                 \"requeued_queries\":{}}}",
                row.scheme,
                row.violation_fraction,
                row.billed_per_hour,
                row.preempted_instances,
                row.requeued_queries
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_spot.json"),
        Err(e) => println!("--> could not write BENCH_spot.json: {e}"),
    }
}

/// One scheme's outcome of the zone-outage experiment.
struct OutageRow {
    scheme: &'static str,
    violation_fraction: f64,
    /// Violation fraction among queries *offered during* the outage window
    /// plus one outage-length of aftermath — the spike the spread constraint
    /// is supposed to flatten.
    spike_fraction: f64,
    billed_per_hour: f64,
    /// Time from the outage onset back to a <=15 % windowed violation rate.
    ttr_us: Option<TimeUs>,
    killed_instances: usize,
    lost_queries: usize,
    rejected_purchases: usize,
}

/// Zone outage — correlated-failure resilience of the serving loop: a
/// two-zone offering catalog (zone b a hair pricier, so a domain-blind
/// planner concentrates in zone a), a mid-run outage that takes zone a down
/// end to end (notice → drain → kill on every instance, purchases rejected
/// for the outage window).  Compares **domain-aware** Kairos (the
/// `max_fraction_per_domain` spread constraint keeps half the fleet in
/// zone b) against **domain-blind** Kairos (same fault replans and backoff,
/// no spread, so the outage wipes nearly the whole fleet) and the reactive
/// homogeneous autoscaler (rebuys into the dead zone on its cooldown
/// cadence until the outage lifts).  Records violation %, time-weighted
/// billed $/hr, time-to-recover from the outage onset, queries lost to the
/// outage and rejected purchases to `BENCH_outage.json`.
pub fn figure_outage() {
    let fast = fast_mode();
    let duration_s = if fast { 6.0 } else { 12.0 };
    let (rate_qps, budget) = (60.0, 2.6);
    let outage_start_us = (duration_s * 0.4 * 1e6) as TimeUs;
    let outage_len_us = (duration_s * 0.3 * 1e6) as TimeUs;
    section("Zone outage: failure-domain spread vs domain-blind planning (RM2)");
    println!(
        "{rate_qps} QPS steady, {duration_s} s, budget {budget} $/hr; us-east-1a goes down \
         at {:.1} s for {:.1} s (200 ms notice), zone-b aux capacity priced 2 % over zone a",
        outage_start_us as f64 / 1e6,
        outage_len_us as f64 / 1e6
    );

    let model = ModelKind::Rm2;
    let latency = paper_calibration();
    let service = ServiceSpec::new(model, latency.clone());
    let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
    let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
    // The same hardware menu in both zones; zone-b aux capacity is priced
    // 2 % over zone a so an unconstrained cost-ranked plan concentrates in
    // zone a.  GPU pricing is near-uniform across zones (as on real clouds);
    // the 0.1 % epsilon only breaks cost ties toward zone a.
    let mut gpu_b = ec2::g4dn_xlarge();
    gpu_b.is_base = false;
    gpu_b.price_per_hour *= 1.001;
    let mut aux_b = ec2::r5n_large();
    aux_b.price_per_hour *= 1.02;
    let catalog = OfferingCatalog::new(vec![
        Offering::on_demand(ec2::g4dn_xlarge()).in_domain(zone_a.clone()),
        Offering::on_demand(ec2::r5n_large()).in_domain(zone_a.clone()),
        Offering::on_demand(gpu_b).in_domain(zone_b.clone()),
        Offering::on_demand(aux_b).in_domain(zone_b.clone()),
    ]);
    let market = std::sync::Arc::new(TraceMarket::new(catalog.clone()));
    let effective = catalog.effective_pool();
    let placements = catalog.domains();
    let process = FaultProcess::new(vec![FaultEvent::ZoneOutage {
        domain: zone_a,
        start_us: outage_start_us,
        duration_us: outage_len_us,
    }]);
    let trace = kairos_workload::TraceSpec::production(rate_qps, duration_s, 7).generate();

    // Recovery tolerance at 20 %: roughly twice the steady-state violation
    // noise of this workload, so "recovered" means back to nominal service,
    // not merely below the outage peak.
    let (bucket_us, tol) = (250_000, 0.2);
    // The spike window: arrivals from the outage onset through one extra
    // outage-length of aftermath, the stretch where lost capacity bites.
    let spike_end_us = outage_start_us + 2 * outage_len_us;
    let spike_of = |report: &SimReport| {
        let (mut total, mut late) = (0usize, 0usize);
        for r in &report.records {
            if (outage_start_us..spike_end_us).contains(&r.arrival_us) {
                total += 1;
                late += usize::from(!r.within_qos(report.qos_for(r.model)));
            }
        }
        for u in &report.unfinished {
            if (outage_start_us..spike_end_us).contains(&u.arrival_us) {
                total += 1;
                late += usize::from(
                    report.horizon_us.saturating_sub(u.arrival_us) > report.qos_for(u.model),
                );
            }
        }
        if total == 0 {
            0.0
        } else {
            late as f64 / total as f64
        }
    };
    let row_of = |scheme: &'static str, report: &SimReport| OutageRow {
        scheme,
        violation_fraction: report.violation_fraction(),
        spike_fraction: spike_of(report),
        billed_per_hour: report.billed_cost_per_hour(),
        ttr_us: report
            .outage_recoveries(bucket_us, tol)
            .first()
            .and_then(|(_, t)| *t),
        killed_instances: report.outages.iter().map(|o| o.killed_instances).sum(),
        lost_queries: report.outages.iter().map(|o| o.lost_queries).sum(),
        rejected_purchases: report.rejected_purchases,
    };
    // Provisioning at 400 ms: replacement capacity is not instant, so the
    // share of the fleet that *survives* the outage dominates the spike.
    let serving_options = ServingOptions::default()
        .budget(budget)
        .replan_every(500_000)
        .provisioning_delay(400_000)
        .purchase_backoff(400_000, 3);

    // Domain-aware: the spread constraint caps any zone at half the fleet,
    // so zone b holds serving capacity — including a GPU — through the
    // outage.
    let mut aware_system = ServingSystem::with_market(
        catalog.clone(),
        market.clone(),
        model,
        Some(latency.clone()),
        serving_options.spread_limit(0.5),
    )
    .with_fault_process(process.clone());
    aware_system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let aware_initial = aware_system
        .plan_for_demand(rate_qps)
        .expect("priors allow planning");
    let aware_outcome = aware_system.run(&aware_initial, &service, &trace);
    let aware_row = row_of("KAIROS(domain-aware)", &aware_outcome.report);

    // Domain-blind: identical loop, fault replans and backoff included,
    // but no spread constraint — the cheaper zone takes (nearly) all.
    let mut blind_system = ServingSystem::with_market(
        catalog.clone(),
        market.clone(),
        model,
        Some(latency.clone()),
        serving_options,
    )
    .with_fault_process(process.clone());
    blind_system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
    let blind_initial = blind_system
        .plan_for_demand(rate_qps)
        .expect("priors allow planning");
    let blind_outcome = blind_system.run(&blind_initial, &service, &trace);
    let blind_row = row_of("KAIROS(domain-blind)", &blind_outcome.report);

    // Reactive homogeneous autoscaler on the zone-a base type: the outage
    // wipes its fleet and rejects its rebuys until the window lifts.
    let scaler = ReactiveAutoscaler::new(AutoscalerOptions {
        cooldown_us: 500_000,
        provisioning_delay_us: 400_000,
        ..Default::default()
    });
    let reactive = scaler.run_with_faults(
        &effective,
        2,
        &service,
        &trace,
        Some(market.as_ref()),
        Some((&process, &placements)),
    );
    let reactive_row = row_of("REACTIVE(homo)", &reactive.report);

    if std::env::var("KAIROS_FIG_DEBUG").is_ok() {
        println!("aware initial {:?}", aware_initial);
        println!("blind initial {:?}", blind_initial);
        for (name, outcome) in [("aware", &aware_outcome), ("blind", &blind_outcome)] {
            for r in &outcome.reconfigs {
                println!("{name} reconfig {:?}", r);
            }
            let tl = outcome.report.violation_timeline(500_000);
            println!(
                "{name} timeline {:?}",
                tl.iter()
                    .map(|(t, v)| (*t / 1000, (v * 100.0) as u32))
                    .collect::<Vec<_>>()
            );
        }
    }
    let rows = [aware_row, blind_row, reactive_row];
    println!(
        "\n{:<22}{:>14}{:>10}{:>14}{:>14}{:>9}{:>8}{:>10}",
        "scheme",
        "violations %",
        "spike %",
        "billed $/hr",
        "recover (ms)",
        "killed",
        "lost",
        "rejected"
    );
    for row in &rows {
        let rec = row
            .ttr_us
            .map(|t| format!("{:.0}", t as f64 / 1000.0))
            .unwrap_or_else(|| "never".into());
        println!(
            "{:<22}{:>14.2}{:>10.2}{:>14.3}{:>14}{:>9}{:>8}{:>10}",
            row.scheme,
            row.violation_fraction * 100.0,
            row.spike_fraction * 100.0,
            row.billed_per_hour,
            rec,
            row.killed_instances,
            row.lost_queries,
            row.rejected_purchases
        );
    }
    println!(
        "--> domain-aware: {} reconfiguration(s), {} fault-triggered; \
         domain-blind: {} reconfiguration(s), {} fault-triggered",
        aware_outcome.reconfigs.len(),
        aware_outcome
            .reconfigs
            .iter()
            .filter(|r| r.trigger == ReplanTrigger::Fault)
            .count(),
        blind_outcome.reconfigs.len(),
        blind_outcome
            .reconfigs
            .iter()
            .filter(|r| r.trigger == ReplanTrigger::Fault)
            .count(),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_outage.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig_outage/{}\",\"violation_fraction\":{:.4},\
                 \"spike_fraction\":{:.4},\"billed_per_hour\":{:.4},\"ttr_us\":{},\
                 \"killed_instances\":{},\"lost_queries\":{},\"rejected_purchases\":{}}}",
                row.scheme,
                row.violation_fraction,
                row.spike_fraction,
                row.billed_per_hour,
                row.ttr_us
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into()),
                row.killed_instances,
                row.lost_queries,
                row.rejected_purchases
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_outage.json"),
        Err(e) => println!("--> could not write BENCH_outage.json: {e}"),
    }
}

/// One scheme's outcome of the online leg of the variants experiment.
struct VariantRow {
    scheme: &'static str,
    violation_fraction: f64,
    delivered_accuracy: f64,
    mean_cost_per_hour: f64,
    switches: usize,
    final_variant: String,
}

/// Model-less variant serving — the accuracy-vs-cost frontier the variant
/// catalog opens up, plus the online downgrade-under-pressure story (RM2,
/// paper catalog: fp32 reference, int8 at 1.8x, distilled at 2.8x).
///
/// **Frontier**: at a fixed demand the reference can serve under the
/// budget, sweep the accuracy floor and record the cheapest covering
/// `(variant, configuration)` the planner picks — single-variant Kairos is
/// exactly the strictest floor (only fp32 admissible), so every relaxation
/// that picks a cheaper config at the same demand is a point the
/// single-variant planner cannot reach.
///
/// **Online**: an offered rate sized to the reference plan's own best upper
/// bound (i.e. ~35 % over what fp32 can serve with headroom under the
/// budget) is replayed through three serving loops: single-variant Kairos,
/// the variant-aware loop with a 0.98 floor (quantized lanes inadmissible —
/// must behave like single-variant), and the unfloored variant-aware loop
/// (downgrades, serves, re-promotes).  Records violation %, delivered mean
/// accuracy, time-weighted target cost and switch counts.
///
/// Writes `BENCH_variants.json` at the workspace root; `KAIROS_FIG_FAST=1`
/// shrinks the online trace for CI smoke runs.
pub fn figure_variants() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let fast = fast_mode();
    let duration_s = if fast { 4.0 } else { 10.0 };
    let budget = 2.5;
    section("Model-less variants: accuracy-aware auto-selection vs single-variant Kairos (RM2)");

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let model = ModelKind::Rm2;
    let service = ServiceSpec::new(model, latency.clone());
    let catalog = VariantCatalog::paper_variants();
    let sample = BatchSizeDistribution::production_default()
        .sample_many(&mut StdRng::seed_from_u64(7), 2_000);

    // ---- Frontier: cheapest covering (variant, config) per accuracy floor.
    let planner = paper_variant_planner(&pool, model, &latency);
    let headroom = 1.35;
    let ref_best = planner.rank_configs_variants(budget, &sample, Some(0.98))[0].upper_bound;
    // A demand the reference *can* cover with headroom under the budget, so
    // every floor admits a covering plan and the rows differ only in cost.
    let frontier_demand = ref_best * 0.7 / headroom;
    let floors: [(&'static str, Option<f64>); 4] = [
        ("0.980", Some(0.98)),
        ("0.965", Some(0.965)),
        ("0.940", Some(0.94)),
        ("none", None),
    ];
    println!(
        "frontier: demand {frontier_demand:.1} QPS (x{headroom} headroom), budget {budget} $/hr, \
         accuracy floors {{0.98, 0.965, 0.94, none}}"
    );
    println!(
        "\n{:<10}{:>12}{:>12}{:>14}{:>14}{:>14}",
        "floor", "variant", "accuracy", "config", "cost $/hr", "UB (QPS)"
    );
    let frontier: Vec<(&'static str, kairos_core::VariantChoice)> = floors
        .iter()
        .map(|&(label, floor)| {
            let choice = planner
                .cheapest_for_demand(budget, &sample, frontier_demand, headroom, floor)
                .expect("the reference covers the frontier demand");
            (label, choice)
        })
        .collect();
    for (label, choice) in &frontier {
        println!(
            "{:<10}{:>12}{:>12.3}{:>14}{:>14.3}{:>14.1}",
            label,
            choice.variant,
            choice.accuracy,
            choice.config.to_string(),
            choice.config.cost(&pool),
            choice.upper_bound
        );
    }

    // ---- Online: overload at the reference plan's own best bound.
    let rate_qps = ref_best;
    println!(
        "\nonline: {rate_qps:.1} QPS steady ({duration_s} s) — ~35 % over what fp32 covers \
         with headroom under {budget} $/hr"
    );
    let trace = kairos_workload::TraceSpec::production(rate_qps, duration_s, 4242).generate();
    let duration_us = (duration_s * 1e6) as TimeUs;
    let serving_options = ServingOptions::default()
        .budget(budget)
        .replan_every(500_000)
        .provisioning_delay(300_000);
    let run_scheme = |scheme: &'static str,
                      catalog: Option<&VariantCatalog>,
                      floor: Option<f64>|
     -> VariantRow {
        let mut options = serving_options;
        if let Some(floor) = floor {
            options = options.min_accuracy(floor);
        }
        let mut system = ServingSystem::new(pool.clone(), model, Some(latency.clone()), options);
        if let Some(catalog) = catalog {
            system = system.with_variants(catalog, &latency);
        }
        system.warm_monitor(&BatchSizeDistribution::production_default(), 2_000, 7);
        let initial = system
            .plan_for_demand(rate_qps)
            .expect("priors allow planning");
        let outcome = system.run(&initial, &service, &trace);
        let mut costs = vec![(0, initial.cost(&pool))];
        costs.extend(
            outcome
                .reconfigs
                .iter()
                .map(|r| (r.at_us, r.target.cost(&pool))),
        );
        VariantRow {
            scheme,
            violation_fraction: outcome.report.violation_fraction(),
            delivered_accuracy: outcome.report.delivered_accuracy(),
            mean_cost_per_hour: mean_cost(costs, duration_us),
            switches: outcome.variant_switches.len(),
            final_variant: system.active_variant().unwrap_or("fp32").to_string(),
        }
    };
    let rows = [
        run_scheme("KAIROS(fp32)", None, None),
        run_scheme("KAIROS(floor-0.98)", Some(&catalog), Some(0.98)),
        run_scheme("KAIROS(variants)", Some(&catalog), None),
    ];
    println!(
        "\n{:<20}{:>14}{:>12}{:>16}{:>10}{:>12}",
        "scheme", "violations %", "accuracy", "mean cost $/hr", "switches", "final"
    );
    for row in &rows {
        println!(
            "{:<20}{:>14.2}{:>12.4}{:>16.3}{:>10}{:>12}",
            row.scheme,
            row.violation_fraction * 100.0,
            row.delivered_accuracy,
            row.mean_cost_per_hour,
            row.switches,
            row.final_variant
        );
    }
    println!(
        "--> variant-aware serving traded {:.2} accuracy points for a {:.0} % lower \
         violation rate at the same budget",
        (rows[0].delivered_accuracy - rows[2].delivered_accuracy) * 100.0,
        (1.0 - rows[2].violation_fraction / rows[0].violation_fraction.max(1e-9)) * 100.0
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_variants.json");
    let mut json: Vec<String> = frontier
        .iter()
        .map(|(label, choice)| {
            format!(
                "{{\"name\":\"fig_variants/frontier/floor-{}\",\"variant\":\"{}\",\
                 \"accuracy\":{:.4},\"cost_per_hour\":{:.4},\"upper_bound\":{:.1}}}",
                label,
                choice.variant,
                choice.accuracy,
                choice.config.cost(&pool),
                choice.upper_bound
            )
        })
        .collect();
    json.extend(rows.iter().map(|row| {
        format!(
            "{{\"name\":\"fig_variants/online/{}\",\"violation_fraction\":{:.4},\
             \"delivered_accuracy\":{:.4},\"mean_cost_per_hour\":{:.4},\
             \"switches\":{},\"final_variant\":\"{}\"}}",
            row.scheme,
            row.violation_fraction,
            row.delivered_accuracy,
            row.mean_cost_per_hour,
            row.switches,
            row.final_variant
        )
    }));
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_variants.json"),
        Err(e) => println!("--> could not write BENCH_variants.json: {e}"),
    }
}

/// One engine pass of the scale experiment.
struct ScaleRow {
    engine: &'static str,
    threads: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    sim_s: f64,
}

/// Scale — a synthetic five-model, ~1M-QPS, 60-second mixed trace over a
/// thousands-of-instances cluster, replayed once through the combined
/// [`SimEngine`] and then through the [`ShardedEngine`] at 1/2/4/8 rayon
/// threads.  Asserts the sharded reports are bit-identical to the combined
/// one, reports engine events/sec and the wall-clock vs simulated-time
/// speedup per pass, and writes `BENCH_scale.json`.  `KAIROS_FIG_FAST=1`
/// shrinks the trace for CI smoke runs.
pub fn figure_scale() {
    let fast = fast_mode();
    let (total_qps, duration_s) = if fast {
        (40_000.0, 0.5)
    } else {
        (1_000_000.0, 60.0)
    };
    section("Scale: sharded engine vs combined engine on a ~1M QPS five-model trace");
    if !fast {
        // ~8 GiB covers the full run's peak footprint (trace + per-lane
        // sub-traces + records + merge output).  Faulting it once here, off
        // the clock, keeps every timed pass at resident-memory speed; see
        // `prefault_heap`.
        println!("pre-faulting the replay working set...");
        crate::harness::prefault_heap(8 << 30);
    }

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    // Faster models take the bigger stream shares so the fleet stays in the
    // thousands of instances (RM2 at 350 ms/query needs ~475 instances per
    // 1k QPS; NCF needs ~7).
    let kinds = [
        ModelKind::Ncf,
        ModelKind::Wnd,
        ModelKind::MtWnd,
        ModelKind::Dien,
        ModelKind::Rm2,
    ];
    let shares = [0.55, 0.20, 0.13, 0.10, 0.02];
    let batch: u32 = 8;
    let headroom = 1.35;
    let base = pool.base_index();
    let base_name = pool.types()[base].name.clone();

    // Size each model's all-base-type sub-cluster for its offered rate.
    let services: Vec<ServiceSpec> = kinds
        .iter()
        .map(|&k| ServiceSpec::new(k, latency.clone()))
        .collect();
    let svc_refs: Vec<&ServiceSpec> = services.iter().collect();
    let configs: Vec<Config> = kinds
        .iter()
        .zip(&shares)
        .map(|(&kind, &share)| {
            let per_query_s = latency.expect(kind, &base_name).latency_ms(batch) / 1000.0;
            let count = (share * total_qps * per_query_s * headroom).ceil() as usize;
            let mut counts = vec![0usize; pool.num_types()];
            counts[base] = count.max(1);
            Config::new(counts)
        })
        .collect();
    let spec = ClusterSpec::from_configs(configs);
    let total_instances: usize = spec.pools.iter().map(|p| p.config.total_instances()).sum();

    let mix = MixSpec::from_shares(
        &shares,
        &vec![BatchSizeDistribution::Fixed(batch); kinds.len()],
    );
    println!("generating the trace ({total_qps} QPS x {duration_s} s, 5 models)...");
    let trace = MixedTraceSpec::poisson(total_qps, mix, duration_s, 2023).generate();
    let sim_s = trace.duration_us() as f64 / 1e6;
    println!(
        "{} queries over {:.1} simulated seconds, {} instances across 5 model lanes",
        trace.len(),
        sim_s,
        total_instances
    );

    let opts = SimulationOptions { seed: 11 };
    let mut rows: Vec<ScaleRow> = Vec::new();

    // Combined engine, one pass.
    let started = std::time::Instant::now();
    let mut scheduler = FcfsScheduler::new();
    let combined =
        SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts).run();
    let wall_s = started.elapsed().as_secs_f64();
    rows.push(ScaleRow {
        engine: "single",
        threads: 1,
        events: combined.events_processed,
        wall_s,
        events_per_sec: combined.events_per_sec(wall_s),
        sim_s,
    });

    // Sharded engine at increasing worker counts; every pass must match the
    // combined report bit-for-bit.
    let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts);
    for threads in [1usize, 2, 4, 8] {
        let workers = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let started = std::time::Instant::now();
        let report = workers.install(|| {
            sharded.run(&trace, |_| {
                Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>
            })
        });
        let wall_s = started.elapsed().as_secs_f64();
        assert_eq!(
            combined.records, report.records,
            "sharded records diverged at {threads} threads"
        );
        assert_eq!(combined.unfinished, report.unfinished);
        assert_eq!(combined.events_processed, report.events_processed);
        assert_eq!(
            combined.billed_dollars.to_bits(),
            report.billed_dollars.to_bits()
        );
        rows.push(ScaleRow {
            engine: "sharded",
            threads,
            events: report.events_processed,
            wall_s,
            events_per_sec: report.events_per_sec(wall_s),
            sim_s,
        });
    }

    println!(
        "\n{:<10}{:>9}{:>16}{:>12}{:>16}{:>16}",
        "engine", "threads", "events", "wall (s)", "events/sec", "x realtime"
    );
    for row in &rows {
        println!(
            "{:<10}{:>9}{:>16}{:>12.2}{:>16.0}{:>16.1}",
            row.engine,
            row.threads,
            row.events,
            row.wall_s,
            row.events_per_sec,
            row.sim_s / row.wall_s.max(1e-9)
        );
    }
    // The headline claim is about the *sharded* engine; the combined
    // single-engine pass being slower than real time is the motivation
    // for sharding, not a regression.
    let realtime_ok = rows
        .iter()
        .filter(|r| r.engine == "sharded")
        .all(|r| r.wall_s < r.sim_s);
    println!(
        "--> all passes bit-identical; {}",
        if realtime_ok {
            "every sharded pass simulated faster than real time"
        } else {
            "WARNING: a sharded pass was slower than real time"
        }
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig_scale/{}/{}\",\"threads\":{},\"events\":{},\
                 \"wall_s\":{:.3},\"events_per_sec\":{:.0},\"sim_s\":{:.1},\
                 \"speedup_vs_realtime\":{:.2}}}",
                row.engine,
                row.threads,
                row.threads,
                row.events,
                row.wall_s,
                row.events_per_sec,
                row.sim_s,
                row.sim_s / row.wall_s.max(1e-9)
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_scale.json"),
        Err(e) => println!("--> could not write BENCH_scale.json: {e}"),
    }
}

/// One batcher-timeout setting's outcome of the dynamic-batching sweep.
struct BatchingRow {
    label: &'static str,
    timeout_us: TimeUs,
    instances: usize,
    meets_qos: bool,
    cost_per_hour: f64,
    violation_fraction: f64,
    p99_ms: f64,
    batches_fired: u64,
    mean_fill: f64,
    mean_wait_ms: f64,
}

/// Dynamic-batcher sweep (NCF on the GPU base type, small-query stream):
/// for each batcher timeout, find the cheapest all-base-type cluster that
/// keeps the QoS violation rate at or below 1 %, and record what batching
/// bought — instance count, $/hr, p99, mean batch fill and mean fuse wait.
/// The regime is the classic one for dynamic batching: an interactive
/// stream of small queries (log-normal, median 8 requests) against NCF,
/// whose 0.8 ms dispatch intercept dwarfs its 0.0025 ms/request slope — an
/// unbatched instance burns ~98 % of each invocation on dispatch overhead,
/// so fusing a handful of queries nearly multiplies capacity by the fill.
/// The batcher's fuse cap is sized from the offered mix's p99 batch size
/// via [`BatchSizeDistribution::quantile`] instead of a hand-picked
/// constant.
/// Writes `BENCH_batching.json` at the workspace root;
/// `KAIROS_FIG_FAST=1` shrinks the trace for CI smoke runs.
pub fn figure_batching() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let fast = fast_mode();
    let (rate_qps, duration_s) = if fast { (1_500.0, 2.0) } else { (6_000.0, 6.0) };
    let (tolerance, max_instances) = (0.01, 24usize);
    section("Dynamic batching: cheapest QoS-holding cluster vs batcher timeout (NCF)");

    let pool = PoolSpec::new(ec2::paper_pool());
    let base = pool.base_index();
    let service = ServiceSpec::new(ModelKind::Ncf, paper_calibration());
    // An interactive small-query stream, not the recommendation-trace mix:
    // median 8 requests with a moderate log-normal spread.
    let mix = BatchSizeDistribution::LogNormal {
        median: 8.0,
        sigma: 0.8,
    };
    // Size the fuse cap from the mix itself: fire once a forming batch has
    // fused the p99 offered batch size, so all but the rarest queries leave
    // room to fuse with several typical ones.
    let fuse_cap = mix.quantile(0.99, &mut StdRng::seed_from_u64(2023), 20_000);
    let trace = kairos_workload::TraceSpec {
        arrival: ArrivalProcess::Poisson { rate_qps },
        batch_sizes: mix.clone(),
        duration_s,
        seed: 4242,
    }
    .generate();
    println!(
        "{rate_qps} QPS x {duration_s} s small-query mix (median 8), fuse cap = mix p99 = {fuse_cap}, \
         QoS {} ms at <= {:.0} % violations, ladder 1..={max_instances} x {}",
        ModelKind::Ncf.qos_us() as f64 / 1000.0,
        tolerance * 100.0,
        pool.types()[base].name,
    );

    let timeouts: [(&'static str, TimeUs); 6] = [
        ("off", 0),
        ("0.2ms", 200),
        ("0.5ms", 500),
        ("1ms", 1_000),
        ("2ms", 2_000),
        ("5ms", 5_000),
    ];
    let opts = SimulationOptions { seed: 7 };
    let mut rows: Vec<BatchingRow> = Vec::new();
    for (label, timeout_us) in timeouts {
        // Walk the ladder from the cheapest config up; the first one that
        // holds QoS wins.  If none does, report the top of the ladder.
        let mut chosen: Option<(usize, SimReport)> = None;
        for count in 1..=max_instances {
            let mut counts = vec![0usize; pool.num_types()];
            counts[base] = count;
            let config = Config::new(counts);
            let mut scheduler = FcfsScheduler::new();
            let mut engine =
                SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts);
            if timeout_us > 0 {
                engine = engine.with_batching(BatchingOptions::new(fuse_cap, timeout_us));
            }
            let report = engine.run();
            let meets = report.unfinished.is_empty() && report.violation_fraction() <= tolerance;
            if meets || count == max_instances {
                chosen = Some((count, report));
                break;
            }
        }
        let (instances, report) = chosen.expect("ladder is non-empty");
        let mut counts = vec![0usize; pool.num_types()];
        counts[base] = instances;
        let s = &report.service;
        rows.push(BatchingRow {
            label,
            timeout_us,
            instances,
            meets_qos: report.unfinished.is_empty() && report.violation_fraction() <= tolerance,
            cost_per_hour: Config::new(counts).cost(&pool),
            violation_fraction: report.violation_fraction(),
            p99_ms: report.p99_latency_us() as f64 / 1000.0,
            batches_fired: s.batches_fired,
            mean_fill: if s.batches_fired > 0 {
                s.batch_fill_sum as f64 / s.batches_fired as f64
            } else {
                0.0
            },
            mean_wait_ms: if s.batches_fired > 0 {
                s.batch_wait_us_sum as f64 / s.batches_fired as f64 / 1000.0
            } else {
                0.0
            },
        });
    }

    println!(
        "\n{:<10}{:>11}{:>12}{:>14}{:>10}{:>14}{:>12}{:>12}",
        "timeout",
        "instances",
        "cost $/hr",
        "violations %",
        "p99 (ms)",
        "batches",
        "mean fill",
        "wait (ms)"
    );
    for row in &rows {
        println!(
            "{:<10}{:>11}{:>12.3}{:>14.2}{:>10.1}{:>14}{:>12.2}{:>12.2}",
            row.label,
            format!("{}{}", row.instances, if row.meets_qos { "" } else { "!" }),
            row.cost_per_hour,
            row.violation_fraction * 100.0,
            row.p99_ms,
            row.batches_fired,
            row.mean_fill,
            row.mean_wait_ms,
        );
    }
    let baseline = &rows[0];
    if let Some(best) = rows
        .iter()
        .filter(|r| r.meets_qos && r.timeout_us > 0)
        .min_by(|a, b| a.cost_per_hour.total_cmp(&b.cost_per_hour))
    {
        println!(
            "--> batching ({}) serves the stream at {:.1} % of the unbatched cluster cost",
            best.label,
            100.0 * best.cost_per_hour / baseline.cost_per_hour
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batching.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig_batching/{}\",\"timeout_us\":{},\"instances\":{},\
                 \"meets_qos\":{},\"cost_per_hour\":{:.4},\"violation_fraction\":{:.4},\
                 \"p99_ms\":{:.3},\"batches_fired\":{},\"mean_fill\":{:.3},\
                 \"mean_wait_ms\":{:.3}}}",
                row.label,
                row.timeout_us,
                row.instances,
                row.meets_qos,
                row.cost_per_hour,
                row.violation_fraction,
                row.p99_ms,
                row.batches_fired,
                row.mean_fill,
                row.mean_wait_ms
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_batching.json"),
        Err(e) => println!("--> could not write BENCH_batching.json: {e}"),
    }
}

/// One keep-alive policy's outcome of the serverless experiment.
struct ServerlessRow {
    policy: &'static str,
    billed_dollars: f64,
    dollars_per_1k: f64,
    tail_p99_ms: f64,
    violation_fraction: f64,
    cold_starts: u64,
    parked_hours: f64,
}

/// Serverless lane — a sparse multi-model trace (2 hot NCF lanes carrying
/// ~98 % of the traffic plus 22 low-QPS RM2 tail lanes, one container each)
/// replayed under four keep-alive policies: always-on (legacy), fixed 10 s,
/// fixed 60 s, and the hybrid histogram-of-idle-times policy.  Parked
/// containers stop billing and the next dispatch pays the cold start, so
/// the figure is a cost-per-request vs tail-p99 frontier; the headline is
/// scale-to-zero matching the always-on p99 within RM2's QoS at a fraction
/// of the $/hr.  Writes `BENCH_serverless.json`.
pub fn figure_serverless() {
    use kairos_models::{ColdStartCost, ColdStartProfile, KeepAlivePolicy};
    use kairos_sim::ServerlessConfig;

    let fast = fast_mode();
    let duration_s = if fast { 8.0 } else { 120.0 };
    let total_qps = 120.0;
    let tail_lanes = 22usize;
    let tail_qps = 0.1; // per tail lane: ~10 s mean idle gap
    section("Serverless lane: keep-alive policies on a sparse multi-model tail");
    println!(
        "{total_qps} QPS mixed stream, {duration_s} s; 2 hot NCF lanes + {tail_lanes} RM2 \
         tail lanes at {tail_qps} QPS each (one container per tail lane)"
    );

    let pool = PoolSpec::new(ec2::paper_pool());
    let latency = paper_calibration();
    let n = 2 + tail_lanes;
    let tail_share = tail_qps / total_qps;
    let hot_share = (1.0 - tail_lanes as f64 * tail_share) / 2.0;
    let shares: Vec<f64> = (0..n)
        .map(|m| if m < 2 { hot_share } else { tail_share })
        .collect();
    let dists: Vec<BatchSizeDistribution> = vec![BatchSizeDistribution::Fixed(64); n];
    let trace = MixedTraceSpec {
        arrival: ArrivalProcess::Poisson {
            rate_qps: total_qps,
        },
        mix: MixSpec::from_shares(&shares, &dists),
        duration_s,
        seed: 77,
    }
    .generate();
    // One base-type container per tail lane, two per hot lane.
    let spec = ClusterSpec::from_configs(
        (0..n)
            .map(|m| {
                let mut counts = vec![0usize; 4];
                counts[0] = if m < 2 { 2 } else { 1 };
                Config::new(counts)
            })
            .collect(),
    );
    let services: Vec<ServiceSpec> = (0..n)
        .map(|m| {
            let kind = if m < 2 {
                ModelKind::Ncf
            } else {
                ModelKind::Rm2
            };
            ServiceSpec::new(kind, latency.clone())
        })
        .collect();
    let service_refs: Vec<&ServiceSpec> = services.iter().collect();
    // Container init + model load: 150 ms, well inside RM2's 350 ms QoS.
    let cold = ColdStartCost::new(50_000, 100_000);

    let tail_p99_ms = |report: &SimReport| -> f64 {
        let mut lat: Vec<u64> = report
            .records
            .iter()
            .filter(|r| r.model.index() >= 2)
            .map(|r| r.completion_us - r.arrival_us)
            .collect();
        lat.sort_unstable();
        if lat.is_empty() {
            return 0.0;
        }
        lat[(lat.len() - 1) * 99 / 100] as f64 / 1000.0
    };

    let variants: [(&'static str, Option<KeepAlivePolicy>); 4] = [
        ("always-on", None),
        (
            "fixed-10s",
            Some(KeepAlivePolicy::fixed(10_000_000).unwrap()),
        ),
        (
            "fixed-60s",
            Some(KeepAlivePolicy::fixed(60_000_000).unwrap()),
        ),
        (
            "hybrid-p95",
            Some(KeepAlivePolicy::hybrid(2_000_000, 30, 0.95).unwrap()),
        ),
    ];
    let rows: Vec<ServerlessRow> = variants
        .iter()
        .map(|(label, policy)| {
            let mut scheduler = FcfsScheduler::new();
            let mut engine = SimEngine::new_multi(
                &pool,
                &spec,
                &service_refs,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            );
            if let Some(policy) = policy {
                // Hot lanes stay always-on in every variant; only the tail
                // parks.
                let policies = (0..n).map(|m| (m >= 2).then(|| policy.clone())).collect();
                engine = engine.with_serverless(ServerlessConfig {
                    policies,
                    cold_start: ColdStartProfile::uniform(cold),
                });
            }
            let report = engine.run();
            let completed = report.records.len().max(1);
            ServerlessRow {
                policy: label,
                billed_dollars: report.billed_dollars,
                dollars_per_1k: report.billed_dollars * 1000.0 / completed as f64,
                tail_p99_ms: tail_p99_ms(&report),
                violation_fraction: report.violation_fraction(),
                cold_starts: report.service.cold_starts,
                parked_hours: report.service.parked_us_sum as f64 / 3.6e9,
            }
        })
        .collect();

    println!(
        "\n{:<12}{:>12}{:>12}{:>14}{:>14}{:>12}{:>14}",
        "policy", "billed $", "$/1k req", "tail p99 ms", "violations %", "cold", "parked hrs"
    );
    for row in &rows {
        println!(
            "{:<12}{:>12.4}{:>12.4}{:>14.2}{:>14.2}{:>12}{:>14.3}",
            row.policy,
            row.billed_dollars,
            row.dollars_per_1k,
            row.tail_p99_ms,
            row.violation_fraction * 100.0,
            row.cold_starts,
            row.parked_hours
        );
    }
    let qos_ms = ModelKind::Rm2.qos_us() as f64 / 1000.0;
    let best = rows
        .iter()
        .skip(1)
        .filter(|r| r.tail_p99_ms <= qos_ms)
        .min_by(|a, b| a.billed_dollars.total_cmp(&b.billed_dollars));
    if let Some(best) = best {
        println!(
            "--> {} kept the tail p99 at {:.0} ms (QoS {qos_ms:.0} ms) for {:.0} % of the \
             always-on bill",
            best.policy,
            best.tail_p99_ms,
            100.0 * best.billed_dollars / rows[0].billed_dollars.max(1e-12)
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serverless.json");
    let json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":\"fig_serverless/{}\",\"billed_dollars\":{:.4},\
                 \"dollars_per_1k\":{:.4},\"tail_p99_ms\":{:.3},\
                 \"violation_fraction\":{:.4},\"cold_starts\":{},\"parked_hours\":{:.4}}}",
                row.policy,
                row.billed_dollars,
                row.dollars_per_1k,
                row.tail_p99_ms,
                row.violation_fraction,
                row.cold_starts,
                row.parked_hours
            )
        })
        .collect();
    match std::fs::write(path, json.join("\n") + "\n") {
        Ok(()) => println!("--> recorded BENCH_serverless.json"),
        Err(e) => println!("--> could not write BENCH_serverless.json: {e}"),
    }
}

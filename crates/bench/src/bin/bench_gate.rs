//! CI performance gate for the simulator hot path.
//!
//! Usage: `bench_gate <measured.json> <budget.json>`
//!
//! `measured.json` is the JSONL file the criterion shim appends to when
//! `CRITERION_JSON` is set (`{"name": ..., "mean_ns": ..., "iters": ...}`
//! per line); `budget.json` is the checked-in budget (`BENCH_budget.json`,
//! `{"name": ..., "budget_ns": ...}` per line).  The gate **fails** when a
//! budgeted benchmark's measured mean exceeds `budget_ns × 1.25` — a
//! regression of more than 25 % against the budget — or when a budgeted
//! benchmark was not measured at all.  Benchmarks without a budget line are
//! reported but never fail the gate, so the baseline (`*_run_trace_naive`)
//! entries stay unguarded.
//!
//! Budgets are deliberately set above the reference machine's measured
//! means (see BENCH_simulator.json) so ordinary CI hardware variance does
//! not trip the gate; the 1.25 factor on top catches real hot-path
//! regressions.
//!
//! The parser is intentionally line-based and field-anchored rather than a
//! full JSON reader: both files are machine-written single-level objects.

use std::process::ExitCode;

/// Extracts a `"key":value` number from a flat JSONL line.
fn field(line: &str, key: &str) -> Option<f64> {
    let anchor = format!("\"{key}\":");
    let start = line.find(&anchor)? + anchor.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"name":"..."` string from a flat JSONL line.
fn name(line: &str) -> Option<String> {
    let anchor = "\"name\":\"";
    let start = line.find(anchor)? + anchor.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse(path: &str, value_key: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.lines()
        .filter_map(|line| Some((name(line)?, field(line, value_key)?)))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <measured.json> <budget.json>");
        return ExitCode::from(2);
    }
    let measured = parse(&args[1], "mean_ns");
    let budgets = parse(&args[2], "budget_ns");
    if budgets.is_empty() {
        eprintln!("bench_gate: no budgets found in {}", args[2]);
        return ExitCode::from(2);
    }

    const TOLERANCE: f64 = 1.25;
    let mut failed = false;
    for (bench, budget_ns) in &budgets {
        // The criterion shim appends; the *last* measurement wins.
        let mean = measured
            .iter()
            .rev()
            .find(|(name, _)| name == bench)
            .map(|(_, mean)| *mean);
        match mean {
            None => {
                eprintln!("FAIL  {bench}: budgeted but not measured");
                failed = true;
            }
            Some(mean_ns) => {
                let limit = budget_ns * TOLERANCE;
                let verdict = if mean_ns > limit { "FAIL" } else { "ok  " };
                println!(
                    "{verdict}  {bench}: mean {:.2} ms vs budget {:.2} ms (limit {:.2} ms)",
                    mean_ns / 1e6,
                    budget_ns / 1e6,
                    limit / 1e6
                );
                failed |= mean_ns > limit;
            }
        }
    }
    for (bench, mean_ns) in &measured {
        if !budgets.iter().any(|(b, _)| b == bench) {
            println!("info  {bench}: {:.2} ms (no budget)", mean_ns / 1e6);
        }
    }
    if failed {
        eprintln!("bench_gate: hot-path benchmarks regressed >25% against BENCH_budget.json");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! The experiment-fleet driver.
//!
//! ```text
//! fleet figures [ids...]   regenerate the BENCH_*.json figures
//!                          (default: fig12_shift fig_multimodel fig_spot fig_scale
//!                          fig_batching fig_outage fig_variants fig_serverless)
//! fleet matrix [out_dir]   run the default 24-scenario sweep (default: fleet-results/)
//! fleet smoke  [out_dir]   run the 4-scenario CI sweep (default: target/fleet-smoke/)
//! ```
//!
//! Figures run through `kairos_bench::figures` — the exact code the
//! `figures` bench target executes — so one fleet invocation regenerates
//! every checked-in `BENCH_*.json` bit-for-bit.  Matrix sweeps fan their
//! scenarios out over rayon workers and write one JSON result file per
//! scenario.  `KAIROS_FIG_FAST=1` shrinks the figures for CI.

use kairos_bench::figures;
use kairos_bench::fleet::{run_matrix, ScenarioMatrix};
use std::path::PathBuf;
use std::process::ExitCode;

const FIGURE_IDS: [&str; 8] = [
    "fig12_shift",
    "fig_multimodel",
    "fig_spot",
    "fig_scale",
    "fig_batching",
    "fig_outage",
    "fig_variants",
    "fig_serverless",
];

fn run_figures(ids: &[String]) -> ExitCode {
    let selected: Vec<&str> = if ids.is_empty() {
        FIGURE_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in &selected {
        match *id {
            "fig12_shift" => figures::figure12_load_shift(),
            "fig_multimodel" => figures::figure_multimodel(),
            "fig_spot" => figures::figure_spot(),
            "fig_scale" => figures::figure_scale(),
            "fig_batching" => figures::figure_batching(),
            "fig_outage" => figures::figure_outage(),
            "fig_variants" => figures::figure_variants(),
            "fig_serverless" => figures::figure_serverless(),
            other => {
                eprintln!("unknown figure {other}; known: {FIGURE_IDS:?}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_sweep(matrix: &ScenarioMatrix, out_dir: PathBuf) -> ExitCode {
    println!(
        "fleet: {} scenario(s) -> {}",
        matrix.scenarios.len(),
        out_dir.display()
    );
    let results = run_matrix(matrix, &out_dir);
    println!(
        "{:<28}{:>10}{:>14}{:>12}{:>14}",
        "scenario", "offered", "violations %", "p99 (ms)", "events/sec"
    );
    for r in &results {
        println!(
            "{:<28}{:>10}{:>14.2}{:>12.2}{:>14.0}",
            r.name,
            r.offered,
            r.violation_fraction * 100.0,
            r.p99_us as f64 / 1000.0,
            r.events_per_sec
        );
    }
    println!(
        "--> {} result file(s) in {}",
        results.len(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Large-scale replays (fig_scale) re-fault the same gigabytes every pass
    // without this; see the harness doc.
    kairos_bench::tune_allocator_for_replay();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("figures") => run_figures(&args[1..]),
        Some("matrix") => {
            let out = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("fleet-results"));
            run_sweep(&ScenarioMatrix::default_sweep(), out)
        }
        Some("smoke") => {
            let out = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target/fleet-smoke"));
            run_sweep(&ScenarioMatrix::smoke(), out)
        }
        _ => {
            eprintln!("usage: fleet <figures [ids...] | matrix [out_dir] | smoke [out_dir]>");
            ExitCode::from(2)
        }
    }
}

//! Property-based tests of the serverless lane.
//!
//! 1. **Disabled-path bit-identity** — a [`ServerlessConfig`] with every
//!    lane's policy set to `None` is the legacy engine, bit for bit, on
//!    random multi-model traces against random multi-model cluster shapes:
//!    records, unfinished queries, events processed, billing (compared by
//!    f64 bit pattern) and the service counters all match
//!    [`SimEngine::new_multi`] without the builder call.  The serverless
//!    path must be pay-for-use.
//! 2. **Shard transparency of the disabled path** — the all-`None` combined
//!    engine also matches the (serverless-unaware) [`ShardedEngine`] under
//!    rayon pools of 1, 2, 4 and 8 threads, so the sharded replay contract
//!    survives the builder opt-in.
//! 3. **Enabled-path conservation & accounting** — with random fixed/hybrid
//!    keep-alive policies every offered query still lands in `records` or
//!    `unfinished` exactly once, the cold-start wait sum is exactly
//!    `cold_starts` times the uniform cold-start cost, parked time never
//!    exceeds the billing horizon summed over instances, and the calendar's
//!    lazy deletion never skips an entry it did not first cancel.

use kairos_models::{
    calibration::paper_calibration, ec2, ColdStartCost, ColdStartProfile, Config, KeepAlivePolicy,
    ModelKind, PoolSpec,
};
use kairos_sim::{
    ClusterSpec, FcfsScheduler, Scheduler, ServerlessConfig, ServiceSpec, ShardedEngine, SimEngine,
    SimReport, SimulationOptions,
};
use kairos_workload::{ModelId, Query, Trace};
use proptest::prelude::*;

/// The model kinds backing ids 0..3 in these tests.
const KINDS: [ModelKind; 3] = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

fn services(n: usize) -> Vec<ServiceSpec> {
    KINDS[..n]
        .iter()
        .map(|&k| ServiceSpec::new(k, paper_calibration()))
        .collect()
}

fn fcfs(_: ModelId) -> Box<dyn Scheduler> {
    Box::new(FcfsScheduler::new())
}

/// Random model-tagged queries with gaps long enough that keep-alive
/// deadlines actually fire between arrivals on the enabled path.
fn multi_trace(num_models: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..num_models, 1u32..900, 1u64..3_000_000), 1..80).prop_map(|raw| {
        let mut t = 0u64;
        let queries = raw
            .into_iter()
            .enumerate()
            .map(|(id, (model, batch, gap))| {
                t += gap;
                Query::for_model(id as u64, ModelId::new(model), batch, t)
            })
            .collect();
        Trace::from_queries(queries)
    })
}

/// Random per-model sub-cluster configs over the 4-type paper pool; every
/// model gets at least one instance somewhere so its queries can complete.
fn multi_spec(num_models: usize) -> impl Strategy<Value = ClusterSpec> {
    prop::collection::vec((0usize..3, 0usize..2, 0usize..2, 0usize..2), num_models).prop_map(
        |counts| {
            ClusterSpec::from_configs(
                counts
                    .into_iter()
                    .map(|(a, b, c, d)| Config::new(vec![a.max(1), b, c, d]))
                    .collect(),
            )
        },
    )
}

/// A random per-lane policy: always-on, fixed, or hybrid.
fn lane_policy() -> impl Strategy<Value = Option<KeepAlivePolicy>> {
    (
        0usize..3,
        1_000u64..10_000_000,
        (100_000u64..2_000_000, 2usize..32, 0.5f64..1.0),
    )
        .prop_map(|(variant, idle, (w, n, p))| match variant {
            0 => None,
            1 => Some(KeepAlivePolicy::fixed(idle).unwrap()),
            _ => Some(KeepAlivePolicy::hybrid(w, n, p).unwrap()),
        })
}

/// One full random case: model count, tagged trace, cluster spec, seed.
fn multi_case() -> impl Strategy<Value = (usize, Trace, ClusterSpec, u64)> {
    (1usize..=3).prop_flat_map(|n| (Just(n), multi_trace(n), multi_spec(n), 0u64..1_000))
}

fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.scheduler, b.scheduler);
    assert_eq!(a.records, b.records);
    assert_eq!(a.unfinished, b.unfinished);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.horizon_us, b.horizon_us);
    assert_eq!(a.qos_us, b.qos_us);
    assert_eq!(a.qos_by_model, b.qos_by_model);
    assert_eq!(a.billed_dollars.to_bits(), b.billed_dollars.to_bits());
    assert_eq!(a.billed_by_model.len(), b.billed_by_model.len());
    for (x, y) in a.billed_by_model.iter().zip(&b.billed_by_model) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.service, b.service);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An all-`None` policy vector is the legacy engine bit for bit, and
    /// the legacy sharded engine reproduces it under 1, 2, 4 and 8 rayon
    /// threads: opting the builder in without opting a lane in costs
    /// nothing, on any thread count.
    #[test]
    fn all_none_policies_are_bit_identical_to_the_legacy_engine_and_shards(
        case in multi_case(),
    ) {
        let (n, trace, spec, seed) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(n);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut plain_sched = FcfsScheduler::new();
        let plain =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut plain_sched, &opts).run();
        let mut none_sched = FcfsScheduler::new();
        let none =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut none_sched, &opts)
                .with_serverless(ServerlessConfig {
                    policies: vec![None; n],
                    cold_start: ColdStartProfile::uniform(ColdStartCost::new(250_000, 750_000)),
                })
                .run();
        assert_reports_identical(&plain, &none);

        let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts);
        for threads in [1usize, 2, 4, 8] {
            let pool_n = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = pool_n.install(|| sharded.run(&trace, fcfs));
            assert_reports_identical(&none, &report);
        }
    }

    /// Enabled-path accounting on random policy mixes: conservation holds,
    /// cold-start bookkeeping is exact for a uniform profile, parked time
    /// fits inside the billing horizon, and lazy deletion stays consistent.
    #[test]
    fn serverless_runs_conserve_queries_and_account_cold_starts(
        case in multi_case(),
        lane_policies_seed in prop::collection::vec(lane_policy(), 3),
    ) {
        let (n, trace, spec, seed) = case;
        let lane_policies: Vec<Option<KeepAlivePolicy>> =
            lane_policies_seed.into_iter().take(n).collect();
        let cold = ColdStartCost::new(150_000, 350_000);
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(n);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut scheduler = FcfsScheduler::new();
        let report =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts)
                .with_serverless(ServerlessConfig {
                    policies: lane_policies,
                    cold_start: ColdStartProfile::uniform(cold),
                })
                .run();
        prop_assert_eq!(report.records.len() + report.unfinished.len(), report.offered);
        for r in &report.records {
            prop_assert!(r.start_us >= r.arrival_us);
            prop_assert!(r.completion_us > r.start_us);
        }
        prop_assert_eq!(
            report.service.cold_start_wait_us_sum,
            report.service.cold_starts * cold.total_us()
        );
        let instances: usize = spec.pools.iter().map(|p| p.config.total_instances()).sum();
        prop_assert!(report.service.parked_us_sum <= report.horizon_us * instances as u64);
        prop_assert!(report.service.calendar_stale_popped <= report.service.calendar_cancelled);
    }
}

//! Property-based tests of the throughput-sharing / dynamic-batching
//! ("flex") service path.
//!
//! 1. **None-mode bit-identity** — [`SharingMode::None`] with the batcher
//!    disabled is the legacy engine, bit for bit, on random multi-model
//!    traces against random multi-model cluster shapes: records,
//!    unfinished queries, events processed, billing (compared by f64 bit
//!    pattern) and the service counters all match [`SimEngine::new_multi`]
//!    without the builder call.  The flex path must be pay-for-use.
//! 2. **Shard transparency under flex** — with random sharing curves,
//!    concurrency caps and batcher knobs enabled, the [`ShardedEngine`]
//!    reproduces the combined engine's report bit-for-bit under rayon
//!    pools of 1, 2, 4 and 8 threads: per-instance sharing state never
//!    couples model lanes.
//! 3. **Conservation & counter sanity** — on every random flex case each
//!    offered query lands in `records` or `unfinished` exactly once, fused
//!    members share their invocation's bounds, and the calendar's lazy
//!    deletion never skips an entry it did not first cancel
//!    (`stale_popped <= cancelled`).

use kairos_models::{
    calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec, ThroughputDegradation,
};
use kairos_sim::{
    BatchingOptions, ClusterSpec, FcfsScheduler, Scheduler, ServiceSpec, ShardedEngine,
    SharingMode, SharingOptions, SimEngine, SimReport, SimulationOptions,
};
use kairos_workload::{ModelId, Query, Trace};
use proptest::prelude::*;

/// The model kinds backing ids 0..3 in these tests.
const KINDS: [ModelKind; 3] = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

fn services(n: usize) -> Vec<ServiceSpec> {
    KINDS[..n]
        .iter()
        .map(|&k| ServiceSpec::new(k, paper_calibration()))
        .collect()
}

fn fcfs(_: ModelId) -> Box<dyn Scheduler> {
    Box::new(FcfsScheduler::new())
}

/// Random model-tagged queries: (model, batch, gap) triples turned into a
/// sorted trace.  Gaps skew short so batches actually form.
fn multi_trace(num_models: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..num_models, 1u32..900, 1u64..20_000), 1..120).prop_map(|raw| {
        let mut t = 0u64;
        let queries = raw
            .into_iter()
            .enumerate()
            .map(|(id, (model, batch, gap))| {
                t += gap;
                Query::for_model(id as u64, ModelId::new(model), batch, t)
            })
            .collect();
        Trace::from_queries(queries)
    })
}

/// Random per-model sub-cluster configs over the 4-type paper pool; every
/// model gets at least one instance somewhere so its queries can complete.
fn multi_spec(num_models: usize) -> impl Strategy<Value = ClusterSpec> {
    prop::collection::vec((0usize..3, 0usize..2, 0usize..2, 0usize..2), num_models).prop_map(
        |counts| {
            ClusterSpec::from_configs(
                counts
                    .into_iter()
                    .map(|(a, b, c, d)| Config::new(vec![a.max(1), b, c, d]))
                    .collect(),
            )
        },
    )
}

/// A random degradation curve covering every variant.
fn curve() -> impl Strategy<Value = ThroughputDegradation> {
    (
        0usize..4,
        0.01f64..0.9,
        prop::collection::vec(0.5f64..1.0, 1..5),
    )
        .prop_map(|(variant, alpha, shrinks)| match variant {
            0 => ThroughputDegradation::Ideal,
            1 => ThroughputDegradation::TimeSliced,
            2 => ThroughputDegradation::try_new_linear(alpha).unwrap(),
            _ => {
                // A non-increasing per-sharer rate by construction:
                // r(1) = 1, r(n) = r(n-1) * shrink, table T(n) = n * r(n).
                let mut rate = 1.0;
                let table = shrinks
                    .into_iter()
                    .enumerate()
                    .map(|(i, shrink)| {
                        if i > 0 {
                            rate *= shrink;
                        }
                        (i + 1) as f64 * rate
                    })
                    .collect();
                ThroughputDegradation::try_new_table(table).unwrap()
            }
        })
}

/// Random flex knobs: a sharing curve with a small concurrency cap, and a
/// batcher sized so both the size cap and the timeout fire across cases.
fn flex_knobs() -> impl Strategy<Value = (SharingMode, Option<BatchingOptions>)> {
    (curve(), 0u32..5, 0usize..2, 64u32..1024, 0u64..30_000).prop_map(
        |(c, cap, batch_on, size, timeout)| {
            (
                SharingMode::Fair(SharingOptions::uniform(c).with_max_concurrency(cap)),
                (batch_on == 1).then(|| BatchingOptions::new(size, timeout)),
            )
        },
    )
}

/// One full random case: model count, tagged trace, cluster spec, seed.
fn multi_case() -> impl Strategy<Value = (usize, Trace, ClusterSpec, u64)> {
    (1usize..=3).prop_flat_map(|n| (Just(n), multi_trace(n), multi_spec(n), 0u64..1_000))
}

fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.scheduler, b.scheduler);
    assert_eq!(a.records, b.records);
    assert_eq!(a.unfinished, b.unfinished);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.horizon_us, b.horizon_us);
    assert_eq!(a.qos_us, b.qos_us);
    assert_eq!(a.qos_by_model, b.qos_by_model);
    assert_eq!(a.billed_dollars.to_bits(), b.billed_dollars.to_bits());
    assert_eq!(a.billed_by_model.len(), b.billed_by_model.len());
    for (x, y) in a.billed_by_model.iter().zip(&b.billed_by_model) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.service, b.service);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SharingMode::None with no batcher is the legacy engine bit for bit:
    /// opting the builder in without opting a behavior in costs nothing.
    #[test]
    fn sharing_mode_none_without_batching_is_bit_identical_to_the_legacy_engine(
        case in multi_case(),
    ) {
        let (n, trace, spec, seed) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(n);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut plain_sched = FcfsScheduler::new();
        let plain =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut plain_sched, &opts).run();
        let mut none_sched = FcfsScheduler::new();
        let none =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut none_sched, &opts)
                .with_sharing(SharingMode::None)
                .run();
        assert_reports_identical(&plain, &none);
    }

    /// With sharing and batching enabled, the sharded engine reproduces the
    /// combined engine bit for bit at 1, 2, 4 and 8 threads.
    #[test]
    fn sharded_flex_replay_is_bit_identical_at_any_thread_count(
        case in multi_case(),
        knobs in flex_knobs(),
    ) {
        let (n, trace, spec, seed) = case;
        let (sharing, batching) = knobs;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(n);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut scheduler = FcfsScheduler::new();
        let mut combined_engine =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts)
                .with_sharing(sharing.clone());
        if let Some(b) = batching {
            combined_engine = combined_engine.with_batching(b);
        }
        let combined = combined_engine.run();

        // Conservation and counter sanity on the combined run.
        prop_assert_eq!(
            combined.records.len() + combined.unfinished.len(),
            combined.offered
        );
        prop_assert!(
            combined.service.calendar_stale_popped <= combined.service.calendar_cancelled
        );

        let mut sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts)
            .with_sharing(sharing);
        if let Some(b) = batching {
            sharded = sharded.with_batching(b);
        }
        for threads in [1usize, 2, 4, 8] {
            let pool_n = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = pool_n.install(|| sharded.run(&trace, fcfs));
            assert_reports_identical(&combined, &report);
        }
    }

    /// Batcher accounting on random flex cases: conservation holds, every
    /// record is causally ordered, every query that completed went through
    /// a fired batch, and the lazy-deletion counters stay consistent.
    #[test]
    fn batched_runs_conserve_queries_and_counters(
        case in multi_case(),
        knobs in flex_knobs(),
    ) {
        let (n, trace, spec, seed) = case;
        let (sharing, _) = knobs;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(n);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut scheduler = FcfsScheduler::new();
        let report =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts)
                .with_sharing(sharing)
                .with_batching(BatchingOptions::new(512, 5_000))
                .run();
        prop_assert_eq!(report.records.len() + report.unfinished.len(), report.offered);
        for r in &report.records {
            prop_assert!(r.start_us >= r.arrival_us);
            prop_assert!(r.completion_us > r.start_us);
        }
        // With batching on, every completed query passed through exactly
        // one fired batch.
        prop_assert_eq!(report.service.batched_queries, report.service.batch_fill_sum);
        prop_assert!(report.service.batch_fill_sum >= report.service.batches_fired);
        prop_assert!(report.service.batched_queries as usize >= report.records.len());
        prop_assert!(report.service.calendar_stale_popped <= report.service.calendar_cancelled);
    }
}

//! Regression tests for the incremental `SimEngine`:
//!
//! 1. the incrementally maintained `free_at_us` views must equal the
//!    recomputed-from-scratch views after **every** event of a 10k-query
//!    production trace, and
//! 2. `SimEngine::run` must byte-match the preserved `run_trace_naive`
//!    reference (records, unfinished queries, horizon) for fixed seeds, and
//! 3. the calendar's generation-stamped lazy deletion must never skip an
//!    entry it did not first cancel (`stale_popped <= cancelled`), on the
//!    legacy path and across the flex (sharing + batching) hot path.

use kairos_models::{
    calibration::paper_calibration, ec2, Config, FailureDomain, FaultEvent, FaultProcess,
    ModelKind, PoolSpec, ThroughputDegradation,
};
use kairos_sim::{
    idle_order, run_trace, run_trace_naive, BatchingOptions, Dispatch, FcfsScheduler, Scheduler,
    SchedulingContext, ServiceSpec, SharingMode, SharingOptions, SimEngine, SimulationOptions,
};
use kairos_workload::TraceSpec;

fn setup() -> (PoolSpec, ServiceSpec) {
    (
        PoolSpec::new(ec2::paper_pool()),
        ServiceSpec::new(ModelKind::Wnd, paper_calibration()),
    )
}

/// A Clockwork-like policy that immediately assigns every queued query to
/// the instance with the earliest projected free time, piling work onto
/// *busy* instances so local queues carry real depth — the regime where the
/// naive per-event view rebuild was O(instances × queue-depth).
#[derive(Default)]
struct EarliestFreeScheduler;

impl Scheduler for EarliestFreeScheduler {
    fn name(&self) -> &'static str {
        "earliest-free"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        // Idle views keep the time they went idle; the scheduler contract is
        // to read availability clamped to now (`remaining_us` semantics).
        let mut free_at: Vec<u64> = ctx
            .instances
            .iter()
            .map(|i| i.free_at_us.max(ctx.now_us))
            .collect();
        ctx.queued
            .iter()
            .enumerate()
            .map(|(query_index, _)| {
                let slot = free_at
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &t)| t)
                    .map(|(slot, _)| slot)
                    .expect("non-empty cluster");
                // Rough occupancy charge so consecutive picks spread out.
                free_at[slot] += 10_000;
                Dispatch {
                    query_index,
                    instance_index: ctx.instances[slot].instance_index,
                }
            })
            .collect()
    }
}

/// A 10k-query production trace: 2 kQPS Poisson for 5 s, log-normal batches,
/// against a configuration loaded near its capacity so queues build up.
fn production_10k(seed: u64) -> kairos_workload::Trace {
    let trace = TraceSpec::production(2_000.0, 5.0, seed).generate();
    assert!(
        trace.len() >= 9_000,
        "expected ~10k queries, got {}",
        trace.len()
    );
    trace
}

#[test]
fn incremental_views_equal_recomputed_views_on_a_10k_production_trace() {
    let (pool, service) = setup();
    let config = Config::new(vec![8, 4, 8, 4]);
    let trace = production_10k(101);
    let mut scheduler = EarliestFreeScheduler;
    let mut engine = SimEngine::new(
        &pool,
        &config,
        &service,
        &trace,
        &mut scheduler,
        &SimulationOptions::default(),
    );
    let mut events = 0usize;
    let mut saw_queued_work = false;
    while engine.step() {
        let reference = engine.recompute_views();
        let reference_idle = idle_order(&reference);
        saw_queued_work |= engine
            .cluster()
            .instances()
            .iter()
            .any(|inst| !inst.local_queue.is_empty());
        // The *hot-path* state: incrementally maintained views + idle index,
        // with no full-cluster sweep behind them.
        let (views, idle) = engine.scheduler_views();
        assert_eq!(views, &reference[..], "views diverged after event {events}");
        assert_eq!(
            idle,
            &reference_idle[..],
            "idle index diverged after event {events}"
        );
        events += 1;
    }
    assert!(
        events >= 2 * trace.len(),
        "every query must arrive and complete"
    );
    assert!(saw_queued_work, "test must exercise non-empty local queues");
}

#[test]
fn engine_byte_matches_naive_reference_for_fixed_seeds() {
    let (pool, service) = setup();
    let config = Config::new(vec![8, 4, 8, 4]);
    for seed in [0u64, 7, 42] {
        let trace = production_10k(seed.wrapping_add(11));
        let opts = SimulationOptions { seed };

        // FCFS: idle-only dispatch (empty local queues).
        let fast = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let naive = run_trace_naive(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        assert_eq!(
            fast.records, naive.records,
            "fcfs records diverged (seed {seed})"
        );
        assert_eq!(fast.unfinished, naive.unfinished);
        assert_eq!(fast.horizon_us, naive.horizon_us);

        // Earliest-free: queue-building dispatch (deep local queues).
        let fast = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut EarliestFreeScheduler,
            &opts,
        );
        let naive = run_trace_naive(
            &pool,
            &config,
            &service,
            &trace,
            &mut EarliestFreeScheduler,
            &opts,
        );
        assert_eq!(
            fast.records, naive.records,
            "earliest-free records diverged (seed {seed})"
        );
        assert_eq!(fast.unfinished, naive.unfinished);
        assert_eq!(fast.horizon_us, naive.horizon_us);
    }
}

/// Lazy-deletion bookkeeping on 10k-query production traces: every stale
/// calendar entry skipped at pop time was cancelled first, cancellations
/// never exceed what was scheduled, and the engine still conserves queries.
#[test]
fn calendar_lazy_deletion_counters_stay_consistent() {
    let (pool, service) = setup();
    let config = Config::new(vec![8, 4, 8, 4]);
    let flex_knobs: [(Option<SharingMode>, Option<BatchingOptions>); 4] = [
        (None, None),
        (
            Some(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::try_new_linear(0.2).unwrap())
                    .with_max_concurrency(4),
            )),
            None,
        ),
        (None, Some(BatchingOptions::new(256, 2_000))),
        (
            Some(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(2),
            )),
            Some(BatchingOptions::new(128, 1_000)),
        ),
    ];
    for seed in [0u64, 7] {
        let trace = production_10k(seed.wrapping_add(23));
        let opts = SimulationOptions { seed };
        for (sharing, batching) in &flex_knobs {
            let mut scheduler = FcfsScheduler::new();
            let mut engine =
                SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts);
            if let Some(mode) = sharing {
                engine = engine.with_sharing(mode.clone());
            }
            if let Some(b) = batching {
                engine = engine.with_batching(*b);
            }
            let report = engine.run();
            let s = &report.service;
            assert!(
                s.calendar_stale_popped <= s.calendar_cancelled,
                "skipped an entry that was never cancelled (seed {seed}): {s:?}"
            );
            assert!(
                s.calendar_cancelled <= s.calendar_scheduled,
                "cancelled more than was ever scheduled (seed {seed}): {s:?}"
            );
            assert_eq!(
                report.records.len() + report.unfinished.len(),
                report.offered,
                "query conservation broke (seed {seed})"
            );
            if batching.is_some() {
                assert!(
                    s.batches_fired > 0,
                    "the batcher never engaged (seed {seed})"
                );
                assert_eq!(s.batched_queries, s.batch_fill_sum);
            }
        }
    }
}

/// The same lazy-deletion invariant across *fault-triggered* re-schedules: a
/// zone outage (notice → drain → kill with requeues), a capacity shortage,
/// and a mid-run straggler onset all cancel and re-book calendar entries,
/// and `stale_popped <= cancelled <= scheduled` must survive every knob
/// combination — legacy, sharing, batching, and sharing + batching.
#[test]
fn calendar_counters_stay_consistent_on_fault_paths() {
    let (pool, service) = setup();
    let config = Config::new(vec![4, 2, 4, 2]);
    let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
    let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
    // Types 0 and 1 in zone a (taken down mid-run), 2 and 3 in zone b.
    let placements = vec![
        zone_a.clone(),
        zone_a.clone(),
        zone_b.clone(),
        zone_b.clone(),
    ];
    let process = FaultProcess::new(vec![
        FaultEvent::ZoneOutage {
            domain: zone_a,
            start_us: 1_500_000,
            duration_us: 1_000_000,
        },
        FaultEvent::CapacityShortage {
            domain: zone_b,
            start_us: 2_000_000,
            end_us: 3_000_000,
        },
        FaultEvent::Straggler {
            at_us: 500_000,
            offering: 2,
            slowdown: 0.5,
        },
    ]);
    let flex_knobs: [(Option<SharingMode>, Option<BatchingOptions>); 4] = [
        (None, None),
        (
            Some(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::try_new_linear(0.2).unwrap())
                    .with_max_concurrency(4),
            )),
            None,
        ),
        (None, Some(BatchingOptions::new(256, 2_000))),
        (
            Some(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(2),
            )),
            Some(BatchingOptions::new(128, 1_000)),
        ),
    ];
    for seed in [0u64, 7] {
        let trace = production_10k(seed.wrapping_add(23));
        let opts = SimulationOptions { seed };
        for (sharing, batching) in &flex_knobs {
            let mut scheduler = FcfsScheduler::new();
            let mut engine =
                SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_faults(&process, &placements);
            if let Some(mode) = sharing {
                engine = engine.with_sharing(mode.clone());
            }
            if let Some(b) = batching {
                engine = engine.with_batching(*b);
            }
            let report = engine.run();
            let s = &report.service;
            assert!(
                s.calendar_stale_popped <= s.calendar_cancelled,
                "skipped an entry that was never cancelled (seed {seed}): {s:?}"
            );
            assert!(
                s.calendar_cancelled <= s.calendar_scheduled,
                "cancelled more than was ever scheduled (seed {seed}): {s:?}"
            );
            assert_eq!(
                report.records.len() + report.unfinished.len(),
                report.offered,
                "query conservation broke (seed {seed})"
            );
            // The faults actually landed: the outage killed the two zone-a
            // types' instances and the straggler found its zone-b victim.
            assert_eq!(report.outages.len(), 1);
            assert_eq!(report.outages[0].killed_instances, 6);
            assert_eq!(report.straggler_onsets, 1);
            assert!(
                report.preempted_instances >= 6,
                "outage kills must requeue through the preemption lifecycle"
            );
        }
    }
}

//! Property-based bit-identity contract of the fault layer: attaching an
//! **empty** [`FaultProcess`] with the single default (global) domain must be
//! a perfect no-op.  On random multi-model traces against random cluster
//! shapes — including under concurrent sharing, dynamic batching, and both
//! together — the fault-attached engine's report must match the plain
//! engine's bit for bit: records, unfinished queries, billing (compared by
//! f64 bit pattern), and the full [`ServiceStats`] calendar accounting.  The
//! [`ShardedEngine`] at 1, 2, 4 and 8 rayon threads must match the same
//! report, so the fault layer cannot perturb the shard-transparency
//! guarantee either.

use kairos_models::{
    calibration::paper_calibration, ec2, Config, FaultProcess, ModelKind, PoolSpec,
    ThroughputDegradation,
};
use kairos_sim::{
    BatchingOptions, ClusterSpec, FcfsScheduler, Scheduler, ServiceSpec, ShardedEngine,
    SharingMode, SharingOptions, SimEngine, SimulationOptions,
};
use kairos_workload::{ModelId, Query, Trace};
use proptest::prelude::*;

/// The model kinds backing ids 0..3 in these tests.
const KINDS: [ModelKind; 3] = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

fn services(n: usize) -> Vec<ServiceSpec> {
    KINDS[..n]
        .iter()
        .map(|&k| ServiceSpec::new(k, paper_calibration()))
        .collect()
}

/// Random model-tagged queries: (model, batch, gap) triples turned into a
/// sorted trace.
fn multi_trace(num_models: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..num_models, 1u32..900, 1u64..40_000), 1..120).prop_map(|raw| {
        let mut t = 0u64;
        let queries = raw
            .into_iter()
            .enumerate()
            .map(|(id, (model, batch, gap))| {
                t += gap;
                Query::for_model(id as u64, ModelId::new(model), batch, t)
            })
            .collect();
        Trace::from_queries(queries)
    })
}

/// Random per-model sub-cluster configs over the 4-type paper pool; every
/// model gets at least one instance somewhere so its queries can complete.
fn multi_spec(num_models: usize) -> impl Strategy<Value = ClusterSpec> {
    prop::collection::vec((0usize..3, 0usize..2, 0usize..2, 0usize..2), num_models).prop_map(
        |counts| {
            ClusterSpec::from_configs(
                counts
                    .into_iter()
                    .map(|(a, b, c, d)| Config::new(vec![a.max(1), b, c, d]))
                    .collect(),
            )
        },
    )
}

/// Flex knobs: 0 = legacy, 1 = sharing, 2 = batching, 3 = both.
fn flex(knob: usize) -> (Option<SharingMode>, Option<BatchingOptions>) {
    match knob {
        0 => (None, None),
        1 => (
            Some(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::try_new_linear(0.2).unwrap())
                    .with_max_concurrency(4),
            )),
            None,
        ),
        2 => (None, Some(BatchingOptions::new(256, 2_000))),
        _ => (
            Some(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(2),
            )),
            Some(BatchingOptions::new(128, 1_000)),
        ),
    }
}

/// One full random case: model count, tagged trace, cluster spec, seed, knob.
#[allow(clippy::type_complexity)]
fn fault_case() -> impl Strategy<Value = (usize, Trace, ClusterSpec, u64, usize)> {
    (1usize..=3).prop_flat_map(|n| {
        (
            Just(n),
            multi_trace(n),
            multi_spec(n),
            0u64..1_000,
            0usize..4,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn empty_fault_process_is_bit_identical_to_the_plain_engine(
        case in fault_case(),
    ) {
        let (num_models, trace, spec, seed, knob) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(num_models);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let (sharing, batching) = flex(knob);

        let build = |scheduler: &mut dyn Scheduler, faulted: bool| {
            let mut engine =
                SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, scheduler, &opts);
            if faulted {
                // Empty process, empty placement table: every instance in
                // the single default global domain, zero materialized
                // events.
                engine = engine.with_faults(&FaultProcess::default(), &[]);
            }
            if let Some(mode) = &sharing {
                engine = engine.with_sharing(mode.clone());
            }
            if let Some(b) = &batching {
                engine = engine.with_batching(*b);
            }
            engine.run()
        };
        let plain = build(&mut FcfsScheduler::new(), false);
        let faulted = build(&mut FcfsScheduler::new(), true);

        // Bit-identical outputs: records, unfinished, horizon, billing,
        // and the full calendar/service accounting.
        prop_assert_eq!(&plain.records, &faulted.records);
        prop_assert_eq!(&plain.unfinished, &faulted.unfinished);
        prop_assert_eq!(plain.offered, faulted.offered);
        prop_assert_eq!(plain.horizon_us, faulted.horizon_us);
        prop_assert_eq!(&plain.qos_by_model, &faulted.qos_by_model);
        prop_assert_eq!(
            plain.billed_dollars.to_bits(),
            faulted.billed_dollars.to_bits()
        );
        prop_assert_eq!(plain.billed_by_model.len(), faulted.billed_by_model.len());
        for (a, b) in plain.billed_by_model.iter().zip(&faulted.billed_by_model) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(&plain.service, &faulted.service);
        prop_assert_eq!(plain.events_processed, faulted.events_processed);
        prop_assert_eq!(plain.preemption_notices, faulted.preemption_notices);
        prop_assert_eq!(plain.preempted_instances, faulted.preempted_instances);
        prop_assert_eq!(plain.requeued_queries, faulted.requeued_queries);
        // And the fault-side ledger stays empty.
        prop_assert_eq!(faulted.rejected_purchases, 0);
        prop_assert_eq!(faulted.straggler_onsets, 0);
        prop_assert!(faulted.outages.is_empty());

        // Shard transparency survives the (no-op) fault layer: the sharded
        // engine at every thread count still reproduces the same report.
        let mut sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts);
        if let Some(mode) = &sharing {
            sharded = sharded.with_sharing(mode.clone());
        }
        if let Some(b) = &batching {
            sharded = sharded.with_batching(*b);
        }
        for threads in [1usize, 2, 4, 8] {
            let workers = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = workers.install(|| {
                sharded.run(&trace, |_| Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>)
            });
            prop_assert_eq!(&faulted.records, &report.records);
            prop_assert_eq!(&faulted.unfinished, &report.unfinished);
            prop_assert_eq!(faulted.horizon_us, report.horizon_us);
            prop_assert_eq!(
                faulted.billed_dollars.to_bits(),
                report.billed_dollars.to_bits()
            );
            prop_assert_eq!(faulted.rejected_purchases, report.rejected_purchases);
            prop_assert_eq!(faulted.straggler_onsets, report.straggler_onsets);
            prop_assert_eq!(&faulted.outages, &report.outages);
        }
    }
}

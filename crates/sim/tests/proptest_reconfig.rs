//! Property-based tests of the reconfiguration invariants.
//!
//! For random traces and random interleavings of `add_instance` /
//! `retire_instance` actions injected at random points of the event stream:
//!
//! 1. the incrementally maintained scheduler views stay **bit-identical** to
//!    the views recomputed from scratch after every event,
//! 2. retired (and draining) instances never receive a dispatch after
//!    retirement was requested,
//! 3. every offered query is either completed or reported unfinished, and
//! 4. once the run ends, every drained instance has actually transitioned to
//!    the retired lifecycle state.

use kairos_models::{calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec};
use kairos_sim::{
    Dispatch, Scheduler, SchedulingContext, ServiceSpec, SimEngine, SimulationOptions,
};
use kairos_workload::TraceSpec;
use proptest::prelude::*;
use std::collections::HashSet;

/// One reconfiguration action at a given event ordinal.
#[derive(Debug, Clone, Copy)]
enum Action {
    Add { type_index: usize, delay_us: u64 },
    Retire { victim_seed: usize },
}

fn actions() -> impl Strategy<Value = Vec<(usize, Action)>> {
    prop::collection::vec(
        (
            0usize..400,                // event ordinal the action fires after
            0usize..2,                  // discriminant: add or retire
            (0usize..4, 0u64..800_000), // type index, provisioning delay
            0usize..64,                 // victim selector seed
        ),
        0..12,
    )
    .prop_map(|raw| {
        let mut out: Vec<(usize, Action)> = raw
            .into_iter()
            .map(|(at, kind, (type_index, delay_us), victim_seed)| {
                let action = if kind == 0 {
                    Action::Add {
                        type_index,
                        delay_us,
                    }
                } else {
                    Action::Retire { victim_seed }
                };
                (at, action)
            })
            .collect();
        out.sort_by_key(|(at, _)| *at);
        out
    })
}

/// A queue-building policy (earliest projected free time) so local queues
/// gain real depth — the regime where incremental-view bugs would surface.
#[derive(Default)]
struct EarliestFreeScheduler;

impl Scheduler for EarliestFreeScheduler {
    fn name(&self) -> &'static str {
        "earliest-free"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        let mut free_at: Vec<Option<u64>> = ctx
            .instances
            .iter()
            .map(|i| i.accepting.then_some(i.free_at_us))
            .collect();
        ctx.queued
            .iter()
            .enumerate()
            .filter_map(|(query_index, _)| {
                let slot = free_at
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, t)| t.map(|t| (slot, t)))
                    .min_by_key(|&(_, t)| t)
                    .map(|(slot, _)| slot)?;
                *free_at.get_mut(slot).unwrap() = free_at[slot].map(|t| t + 10_000);
                Some(Dispatch {
                    query_index,
                    instance_index: ctx.instances[slot].instance_index,
                })
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reconfig_preserves_views_and_never_dispatches_to_retired(
        seed in 1u64..1000,
        plan in actions(),
    ) {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(800.0, 0.5, seed).generate();
        let offered = trace.len();
        let mut scheduler = EarliestFreeScheduler;
        let mut engine = SimEngine::new(
            &pool,
            &Config::new(vec![1, 1, 1, 0]),
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );

        let mut next_action = 0usize;
        let mut event_ordinal = 0usize;
        // For every instance with retirement requested: the queries it held
        // at that moment.  Anything it serves later must come from this set.
        let mut allowed_after_retire: Vec<(usize, HashSet<u64>)> = Vec::new();

        while engine.step() {
            event_ordinal += 1;

            // Inject any actions scheduled at this ordinal.
            while next_action < plan.len() && plan[next_action].0 <= event_ordinal {
                match plan[next_action].1 {
                    Action::Add { type_index, delay_us } => {
                        engine.add_instance(type_index, delay_us);
                    }
                    Action::Retire { victim_seed } => {
                        let candidates: Vec<usize> = engine
                            .cluster()
                            .instances()
                            .iter()
                            .filter(|i| i.accepts_dispatches())
                            .map(|i| i.index)
                            .collect();
                        // Keep at least one live instance so the run drains.
                        if candidates.len() > 1 {
                            let victim = candidates[victim_seed % candidates.len()];
                            let held: HashSet<u64> = {
                                let inst = &engine.cluster().instances()[victim];
                                inst.local_queue
                                    .iter()
                                    .map(|q| q.id)
                                    .chain(inst.serving.iter().map(|(q, _)| q.id))
                                    .collect()
                            };
                            engine.retire_instance(victim);
                            allowed_after_retire.push((victim, held));
                        }
                    }
                }
                next_action += 1;
            }

            // Invariant 1: incremental views == recomputed views, bit for bit.
            let reference = engine.recompute_views();
            prop_assert_eq!(engine.views(), &reference[..]);

            // Invariant 2: non-accepting instances hold no query that was not
            // already theirs when retirement was requested.
            for (victim, held) in &allowed_after_retire {
                let inst = &engine.cluster().instances()[*victim];
                for q in inst
                    .local_queue
                    .iter()
                    .map(|q| q.id)
                    .chain(inst.serving.iter().map(|(q, _)| q.id))
                {
                    prop_assert!(
                        held.contains(&q),
                        "query {} dispatched to instance {} after retirement",
                        q,
                        victim
                    );
                }
            }
        }

        // Invariant 4: draining finished for every drained instance.
        for (victim, _) in &allowed_after_retire {
            let inst = &engine.cluster().instances()[*victim];
            prop_assert!(
                inst.is_retired(),
                "instance {} never settled to retired",
                victim
            );
            prop_assert!(inst.is_idle());
        }

        // Invariant 3: conservation of queries.
        let report = engine.report();
        prop_assert_eq!(report.completed() + report.unfinished.len(), offered);
    }
}

//! Property-based tests of the engine's hot-path and reconfiguration
//! invariants.
//!
//! **Reconfiguration** — for random traces and random interleavings of
//! `add_instance` / `retire_instance` actions injected at random points of
//! the event stream:
//!
//! 1. the incrementally maintained scheduler views *and idle-instance index*
//!    stay **bit-identical** to a from-scratch recomputation after every
//!    event (retired instances excepted for `free_at_us`, which the hot path
//!    deliberately leaves stale because no policy may dispatch to them),
//! 2. retired (and draining) instances never receive a dispatch after
//!    retirement was requested,
//! 3. every offered query is either completed or reported unfinished, and
//! 4. once the run ends, every drained instance has actually transitioned to
//!    the retired lifecycle state.
//!
//! **Optimized vs naive** — for random traces, cluster shapes and scheduler
//! policies, the optimized engine (arrival cursor + calendar queue + idle
//! index + scratch buffers) produces **bit-identical** [`SimReport`]s to
//! `run_trace_naive`: same records, same unfinished set, same horizon, same
//! violation timeline.

use kairos_models::{
    calibration::paper_calibration, ec2, Config, ModelKind, Offering, OfferingCatalog, PoolSpec,
    PreemptionProcess, PriceTrace, TraceMarket,
};
use kairos_sim::{
    idle_order, run_trace, run_trace_naive, Dispatch, EngineEvent, Scheduler, SchedulingContext,
    ServiceSpec, SimEngine, SimulationOptions,
};
use kairos_workload::TraceSpec;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One reconfiguration action at a given event ordinal.
#[derive(Debug, Clone, Copy)]
enum Action {
    Add { type_index: usize, delay_us: u64 },
    Retire { victim_seed: usize },
}

fn actions() -> impl Strategy<Value = Vec<(usize, Action)>> {
    prop::collection::vec(
        (
            0usize..400,                // event ordinal the action fires after
            0usize..2,                  // discriminant: add or retire
            (0usize..4, 0u64..800_000), // type index, provisioning delay
            0usize..64,                 // victim selector seed
        ),
        0..12,
    )
    .prop_map(|raw| {
        let mut out: Vec<(usize, Action)> = raw
            .into_iter()
            .map(|(at, kind, (type_index, delay_us), victim_seed)| {
                let action = if kind == 0 {
                    Action::Add {
                        type_index,
                        delay_us,
                    }
                } else {
                    Action::Retire { victim_seed }
                };
                (at, action)
            })
            .collect();
        out.sort_by_key(|(at, _)| *at);
        out
    })
}

/// A queue-building policy (earliest projected free time) so local queues
/// gain real depth — the regime where incremental-view bugs would surface.
#[derive(Default)]
struct EarliestFreeScheduler;

impl Scheduler for EarliestFreeScheduler {
    fn name(&self) -> &'static str {
        "earliest-free"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        // Idle views keep the time they went idle; the scheduler contract is
        // to read availability clamped to now (`remaining_us` semantics).
        let mut free_at: Vec<Option<u64>> = ctx
            .instances
            .iter()
            .map(|i| i.accepting.then_some(i.free_at_us.max(ctx.now_us)))
            .collect();
        ctx.queued
            .iter()
            .enumerate()
            .filter_map(|(query_index, _)| {
                let slot = free_at
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, t)| t.map(|t| (slot, t)))
                    .min_by_key(|&(_, t)| t)
                    .map(|(slot, _)| slot)?;
                *free_at.get_mut(slot).unwrap() = free_at[slot].map(|t| t + 10_000);
                Some(Dispatch {
                    query_index,
                    instance_index: ctx.instances[slot].instance_index,
                })
            })
            .collect()
    }
}

/// An idle-index-driven policy: large queries to idle base instances, small
/// ones to idle auxiliaries, consuming `ctx.idle_now()` directly — so the
/// equivalence property also covers the engine-maintained idle index as seen
/// through the public scheduling contract.
struct ThresholdScheduler {
    threshold: u32,
}

impl Scheduler for ThresholdScheduler {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        let mut idle_base: Vec<u32> = Vec::new();
        let mut idle_aux: Vec<u32> = Vec::new();
        for &i in ctx.idle_now() {
            if ctx.instances[i as usize].is_base {
                idle_base.push(i);
            } else {
                idle_aux.push(i);
            }
        }
        let mut plan = Vec::new();
        for (query_index, query) in ctx.queued.iter().enumerate() {
            let pool = if query.batch_size > self.threshold {
                &mut idle_base
            } else {
                &mut idle_aux
            };
            if let Some(instance_index) = pool.pop() {
                plan.push(Dispatch {
                    query_index,
                    instance_index: instance_index as usize,
                });
            }
        }
        plan
    }
}

fn make_scheduler(kind: usize) -> Box<dyn Scheduler> {
    match kind {
        0 => Box::new(kairos_sim::FcfsScheduler::new()),
        1 => Box::new(EarliestFreeScheduler),
        _ => Box::new(ThresholdScheduler { threshold: 280 }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reconfig_preserves_views_and_never_dispatches_to_retired(
        seed in 1u64..1000,
        plan in actions(),
    ) {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(800.0, 0.5, seed).generate();
        let offered = trace.len();
        let mut scheduler = EarliestFreeScheduler;
        let mut engine = SimEngine::new(
            &pool,
            &Config::new(vec![1, 1, 1, 0]),
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );

        let mut next_action = 0usize;
        let mut event_ordinal = 0usize;
        // For every instance with retirement requested: the queries it held
        // at that moment.  Anything it serves later must come from this set.
        let mut allowed_after_retire: Vec<(usize, HashSet<u64>)> = Vec::new();

        while engine.step() {
            event_ordinal += 1;

            // Inject any actions scheduled at this ordinal.
            while next_action < plan.len() && plan[next_action].0 <= event_ordinal {
                match plan[next_action].1 {
                    Action::Add { type_index, delay_us } => {
                        engine.add_instance(type_index, delay_us);
                    }
                    Action::Retire { victim_seed } => {
                        let candidates: Vec<usize> = engine
                            .cluster()
                            .instances()
                            .iter()
                            .filter(|i| i.accepts_dispatches())
                            .map(|i| i.index)
                            .collect();
                        // Keep at least one live instance so the run drains.
                        if candidates.len() > 1 {
                            let victim = candidates[victim_seed % candidates.len()];
                            let held: HashSet<u64> = {
                                let inst = &engine.cluster().instances()[victim];
                                inst.local_queue
                                    .iter()
                                    .map(|q| q.id)
                                    .chain(inst.serving.iter().map(|(q, _)| q.id))
                                    .collect()
                            };
                            engine.retire_instance(victim);
                            allowed_after_retire.push((victim, held));
                        }
                    }
                }
                next_action += 1;
            }

            // Invariant 1: the hot-path views and idle index — incremental,
            // no full sweep behind them — match the recomputed reference, bit
            // for bit.  Only retired instances (never dispatchable) are
            // allowed a stale `free_at_us`.
            let reference = engine.recompute_views();
            let reference_idle = idle_order(&reference);
            let (views, idle) = engine.scheduler_views();
            prop_assert_eq!(idle, &reference_idle[..]);
            for (view, expect) in views.iter().zip(&reference) {
                if view.accepting || expect.backlog > 0 {
                    prop_assert_eq!(view, expect);
                } else {
                    // Retired: everything but the (unread) free time matches.
                    prop_assert_eq!(view.instance_index, expect.instance_index);
                    prop_assert_eq!(view.backlog, expect.backlog);
                    prop_assert_eq!(view.accepting, expect.accepting);
                }
            }

            // Invariant 2: non-accepting instances hold no query that was not
            // already theirs when retirement was requested.
            for (victim, held) in &allowed_after_retire {
                let inst = &engine.cluster().instances()[*victim];
                for q in inst
                    .local_queue
                    .iter()
                    .map(|q| q.id)
                    .chain(inst.serving.iter().map(|(q, _)| q.id))
                {
                    prop_assert!(
                        held.contains(&q),
                        "query {} dispatched to instance {} after retirement",
                        q,
                        victim
                    );
                }
            }
        }

        // Invariant 4: draining finished for every drained instance.
        for (victim, _) in &allowed_after_retire {
            let inst = &engine.cluster().instances()[*victim];
            prop_assert!(
                inst.is_retired(),
                "instance {} never settled to retired",
                victim
            );
            prop_assert!(inst.is_idle());
        }

        // Invariant 3: conservation of queries.
        let report = engine.report();
        prop_assert_eq!(report.completed() + report.unfinished.len(), offered);
    }

    /// Random preemption storms interleaved with random add/retire actions
    /// preserve every hot-path and accounting invariant: the incremental
    /// views and idle index stay bit-identical to recomputation, a noticed
    /// instance never receives work it did not already hold, each kill
    /// requeues the instance's in-flight work exactly once, and every
    /// offered query is accounted for exactly once at the end.
    #[test]
    fn preemption_interleavings_preserve_views_and_requeue_exactly_once(
        seed in 1u64..500,
        notices in prop::collection::vec((50_000u64..450_000, 0usize..2), 1..4),
        plan in actions(),
        scheduler_kind in 0usize..3,
    ) {
        // Offerings: the four on-demand paper types plus two preemptible
        // spot offerings (GPU and r5n) the notices target.
        let spot_offsets: Vec<Vec<u64>> = (0..2)
            .map(|o| {
                notices
                    .iter()
                    .filter(|(_, target)| *target == o)
                    .map(|(t, _)| *t)
                    .collect()
            })
            .collect();
        let catalog = OfferingCatalog::new(vec![
            Offering::on_demand(ec2::g4dn_xlarge()),
            Offering::on_demand(ec2::c5n_2xlarge()),
            Offering::on_demand(ec2::r5n_large()),
            Offering::on_demand(ec2::t3_xlarge()),
            Offering::spot(
                ec2::g4dn_xlarge(),
                PriceTrace::constant(0.17),
                PreemptionProcess::At { notices_us: spot_offsets[0].clone() },
            ),
            Offering::spot(
                ec2::r5n_large(),
                PriceTrace::constant(0.05),
                PreemptionProcess::At { notices_us: spot_offsets[1].clone() },
            ),
        ]);
        let market = TraceMarket::new(catalog.clone()).with_notice(30_000);
        let pool = catalog.effective_pool();
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(700.0, 0.5, seed).generate();
        let offered = trace.len();
        let mut scheduler = make_scheduler(scheduler_kind);
        let mut engine = SimEngine::new(
            &pool,
            &Config::new(vec![1, 0, 0, 0, 1, 1]),
            &service,
            &trace,
            scheduler.as_mut(),
            &SimulationOptions::default(),
        )
        .with_market_horizon(&market, 1_000_000);

        let mut next_action = 0usize;
        let mut event_ordinal = 0usize;
        // Per-instance: the queries it held when it stopped accepting work
        // (retirement or preemption notice).  Anything it holds later must
        // come from this set.
        let mut held_after_stop: Vec<(usize, HashSet<u64>)> = Vec::new();
        let mut noticed: HashSet<usize> = HashSet::new();
        let mut requeues_seen = 0usize;
        let mut requeues_by_kill: HashMap<usize, usize> = HashMap::new();

        let held_of = |engine: &SimEngine<'_>, index: usize| -> HashSet<u64> {
            let inst = &engine.cluster().instances()[index];
            inst.local_queue
                .iter()
                .map(|q| q.id)
                .chain(inst.serving.iter().map(|(q, _)| q.id))
                .collect()
        };

        while let Some(event) = engine.step_event() {
            event_ordinal += 1;
            match &event {
                EngineEvent::PreemptionNotice { offering, .. } => {
                    let hit: Vec<usize> = engine
                        .cluster()
                        .instances()
                        .iter()
                        .filter(|i| i.type_index == *offering && !i.is_terminated())
                        .map(|i| i.index)
                        .collect();
                    for index in hit {
                        held_after_stop.push((index, held_of(&engine, index)));
                        noticed.insert(index);
                    }
                }
                EngineEvent::InstancePreempted { instance_index, requeued } => {
                    requeues_seen += requeued;
                    let prior = requeues_by_kill.insert(*instance_index, *requeued);
                    // An instance must be killed at most once.
                    prop_assert_eq!(prior, None);
                    let inst = &engine.cluster().instances()[*instance_index];
                    prop_assert!(inst.is_preempted());
                    prop_assert!(inst.is_idle(), "kill must strip all work");
                }
                _ => {}
            }

            // Inject reconfiguration actions, as in the retirement test.
            while next_action < plan.len() && plan[next_action].0 <= event_ordinal {
                match plan[next_action].1 {
                    Action::Add { type_index, delay_us } => {
                        // Spread the 0..4 strategy range over the six
                        // offerings so spot capacity is also added mid-run
                        // (possibly after its offering's storm).
                        engine.add_instance((type_index * 2) % 6, delay_us);
                    }
                    Action::Retire { victim_seed } => {
                        let candidates: Vec<usize> = engine
                            .cluster()
                            .instances()
                            .iter()
                            .filter(|i| i.accepts_dispatches())
                            .map(|i| i.index)
                            .collect();
                        if candidates.len() > 1 {
                            let victim = candidates[victim_seed % candidates.len()];
                            held_after_stop.push((victim, held_of(&engine, victim)));
                            engine.retire_instance(victim);
                        }
                    }
                }
                next_action += 1;
            }

            // Hot-path views and idle index stay bit-identical to the
            // recomputed reference (terminated instances may keep a stale
            // free time — no policy reads it).
            let reference = engine.recompute_views();
            let reference_idle = idle_order(&reference);
            let (views, idle) = engine.scheduler_views();
            prop_assert_eq!(idle, &reference_idle[..]);
            for (view, expect) in views.iter().zip(&reference) {
                if view.accepting || expect.backlog > 0 {
                    prop_assert_eq!(view, expect);
                } else {
                    prop_assert_eq!(view.instance_index, expect.instance_index);
                    prop_assert_eq!(view.backlog, expect.backlog);
                    prop_assert_eq!(view.accepting, expect.accepting);
                }
            }

            // A stopped instance holds only queries it already had.
            for (index, held) in &held_after_stop {
                for q in held_of(&engine, *index) {
                    prop_assert!(
                        held.contains(&q),
                        "query {} reached instance {} after it stopped accepting",
                        q,
                        index
                    );
                }
            }
        }

        // Every noticed instance was killed exactly once and ended preempted.
        for index in &noticed {
            prop_assert!(
                requeues_by_kill.contains_key(index),
                "instance {} was noticed but never killed",
                index
            );
            prop_assert!(engine.cluster().instances()[*index].is_preempted());
        }

        let report = engine.report();
        prop_assert_eq!(report.requeued_queries, requeues_seen);
        prop_assert_eq!(report.preempted_instances, requeues_by_kill.len());
        // Conservation: every offered query completes or is reported
        // unfinished, exactly once (requeues never duplicate or drop work).
        prop_assert_eq!(report.completed() + report.unfinished.len(), offered);
        let mut seen: HashSet<u64> = HashSet::new();
        for id in report
            .records
            .iter()
            .map(|r| r.id)
            .chain(report.unfinished.iter().map(|u| u.id))
        {
            prop_assert!(seen.insert(id), "query {} accounted twice", id);
        }
    }

    /// The optimized engine is bit-identical to the naive reference across
    /// random traces, cluster shapes and scheduler policies: per-query
    /// records, unfinished queries, horizon, and the derived violation
    /// timeline all match exactly.
    #[test]
    fn optimized_engine_bit_matches_naive_reference(
        seed in 1u64..400,
        rate in 50.0f64..1600.0,
        duration_ds in 3u32..12,            // deciseconds: 0.3 s – 1.1 s
        counts in prop::collection::vec(0usize..3, 4),
        scheduler_kind in 0usize..3,
        noise_seed in 0u64..64,
    ) {
        prop_assume!(counts.iter().sum::<usize>() > 0);
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace =
            TraceSpec::production(rate, duration_ds as f64 / 10.0, seed).generate();
        let config = Config::new(counts);
        let opts = SimulationOptions { seed: noise_seed };

        let mut fast_scheduler = make_scheduler(scheduler_kind);
        let fast = run_trace(
            &pool, &config, &service, &trace, fast_scheduler.as_mut(), &opts,
        );
        let mut naive_scheduler = make_scheduler(scheduler_kind);
        let naive = run_trace_naive(
            &pool, &config, &service, &trace, naive_scheduler.as_mut(), &opts,
        );

        prop_assert_eq!(&fast.records, &naive.records);
        prop_assert_eq!(&fast.unfinished, &naive.unfinished);
        prop_assert_eq!(fast.offered, naive.offered);
        prop_assert_eq!(fast.horizon_us, naive.horizon_us);
        prop_assert_eq!(
            fast.violation_timeline(100_000),
            naive.violation_timeline(100_000)
        );

        // The early-exit probe agrees with the full-replay verdict too.
        for tolerance in [0.0, 0.01, 0.25] {
            let mut probe_scheduler = make_scheduler(scheduler_kind);
            let probe = SimEngine::new(
                &pool, &config, &service, &trace, probe_scheduler.as_mut(), &opts,
            )
            .run_qos_probe(tolerance);
            prop_assert_eq!(probe, naive.meets_qos(tolerance));
        }
    }
}

//! Property-based tests of the variant catalogue's legacy-equivalence
//! contract at the engine layer.
//!
//! The catalogue **lowers** rather than leaks: [`VariantCatalog::effective_models`]
//! flattens (model × variant) into per-lane [`ServiceSpec`]-shaped latency
//! tables and the engines never learn that variants exist.  The contract
//! that makes the lowering safe to adopt is *exactness at the reference*:
//! a reference-only catalogue (every model at fp32, unit speedup) must
//! reproduce the un-varianted system **bit for bit** — same records, same
//! billing bits, same accuracy sums — because `profile_on` returns the base
//! profile unchanged at unit speedup.
//!
//! 1. **Combined engine** — on random multi-model traces against random
//!    cluster shapes, services built from a reference-only lowering produce
//!    a [`SimEngine`] report whose `Debug` form (every field, full float
//!    precision) equals the legacy [`ServiceSpec::new`] run, with billing
//!    and accuracy sums additionally compared by bit pattern.
//! 2. **Sharded engine** — the same lowered services driven through
//!    [`ShardedEngine`] under rayon pools of 1, 2, 4 and 8 threads
//!    reproduce the legacy combined report bit-for-bit, so the variant
//!    subsystem composes with shard-parallel replay at any worker count.

use kairos_models::{
    calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec, VariantCatalog,
};
use kairos_sim::{
    ClusterSpec, FcfsScheduler, Scheduler, ServiceSpec, ShardedEngine, SimEngine, SimulationOptions,
};
use kairos_workload::{ModelId, Query, Trace};
use proptest::prelude::*;

/// The model kinds backing ids 0..3 in these tests.
const KINDS: [ModelKind; 3] = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

/// The legacy construction: one [`ServiceSpec`] per model straight off the
/// shared calibration table.
fn legacy_services(n: usize) -> Vec<ServiceSpec> {
    KINDS[..n]
        .iter()
        .map(|&k| ServiceSpec::new(k, paper_calibration()))
        .collect()
}

/// The same services built the variant way: a reference-only catalogue
/// lowered through [`VariantCatalog::effective_models`], lanes re-ordered
/// from the catalogue's [`ModelKind::ALL`] family order back to the trace's
/// model-id order.  Each lane's table holds a verbatim copy of the base
/// entries for its model — nothing else — which is all the engine ever
/// looks up.
fn lowered_services(n: usize) -> Vec<ServiceSpec> {
    let catalog = VariantCatalog::reference_only(&KINDS[..n]);
    let lanes = catalog.effective_models(&paper_calibration());
    assert_eq!(lanes.len(), n);
    KINDS[..n]
        .iter()
        .map(|&k| {
            let lane = lanes
                .iter()
                .find(|l| l.base == k)
                .expect("one lane per model");
            assert!(lane.reference, "reference-only lowering yields fp32 lanes");
            ServiceSpec::new(k, lane.latency.clone())
        })
        .collect()
}

/// Random model-tagged queries: (model, batch, gap) triples turned into a
/// sorted trace.
fn multi_trace(num_models: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..num_models, 1u32..900, 1u64..40_000), 1..120).prop_map(|raw| {
        let mut t = 0u64;
        let queries = raw
            .into_iter()
            .enumerate()
            .map(|(id, (model, batch, gap))| {
                t += gap;
                Query::for_model(id as u64, ModelId::new(model), batch, t)
            })
            .collect();
        Trace::from_queries(queries)
    })
}

/// Random per-model sub-cluster configs over the 4-type paper pool; every
/// model gets at least one instance somewhere so its queries can complete.
fn multi_spec(num_models: usize) -> impl Strategy<Value = ClusterSpec> {
    prop::collection::vec((0usize..3, 0usize..2, 0usize..2, 0usize..2), num_models).prop_map(
        |counts| {
            ClusterSpec::from_configs(
                counts
                    .into_iter()
                    .map(|(a, b, c, d)| Config::new(vec![a.max(1), b, c, d]))
                    .collect(),
            )
        },
    )
}

/// One full random case: model count, tagged trace, cluster spec, seed.
fn multi_case() -> impl Strategy<Value = (usize, Trace, ClusterSpec, u64)> {
    (1usize..=3).prop_flat_map(|n| (Just(n), multi_trace(n), multi_spec(n), 0u64..1_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reference_only_lowering_reproduces_the_legacy_engine_bit_for_bit(
        case in multi_case(),
    ) {
        let (num_models, trace, spec, seed) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let opts = SimulationOptions { seed };

        let legacy = legacy_services(num_models);
        let legacy_refs: Vec<&ServiceSpec> = legacy.iter().collect();
        let mut scheduler = FcfsScheduler::new();
        let base =
            SimEngine::new_multi(&pool, &spec, &legacy_refs, &trace, &mut scheduler, &opts)
                .run();

        let lowered = lowered_services(num_models);
        let lowered_refs: Vec<&ServiceSpec> = lowered.iter().collect();
        let mut scheduler = FcfsScheduler::new();
        let report =
            SimEngine::new_multi(&pool, &spec, &lowered_refs, &trace, &mut scheduler, &opts)
                .run();

        // Full-report equality through Debug: every field, full precision.
        prop_assert_eq!(format!("{:?}", base), format!("{:?}", report));
        // Floats additionally by bit pattern (Debug collapses -0.0 == 0.0).
        prop_assert_eq!(base.billed_dollars.to_bits(), report.billed_dollars.to_bits());
        for (a, b) in base
            .accuracy_sum_by_model
            .iter()
            .zip(&report.accuracy_sum_by_model)
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reference_only_lowering_is_bit_identical_through_the_sharded_engine(
        case in multi_case(),
    ) {
        let (num_models, trace, spec, seed) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let opts = SimulationOptions { seed };

        let legacy = legacy_services(num_models);
        let legacy_refs: Vec<&ServiceSpec> = legacy.iter().collect();
        let mut scheduler = FcfsScheduler::new();
        let base =
            SimEngine::new_multi(&pool, &spec, &legacy_refs, &trace, &mut scheduler, &opts)
                .run();

        let lowered = lowered_services(num_models);
        let lowered_refs: Vec<&ServiceSpec> = lowered.iter().collect();
        let sharded = ShardedEngine::new(&pool, &spec, &lowered_refs, &opts);
        for threads in [1usize, 2, 4, 8] {
            let workers = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = workers.install(|| {
                sharded.run(&trace, |_| Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>)
            });
            prop_assert_eq!(format!("{:?}", &base), format!("{:?}", &report));
            prop_assert_eq!(
                base.billed_dollars.to_bits(),
                report.billed_dollars.to_bits()
            );
            for (a, b) in base
                .accuracy_sum_by_model
                .iter()
                .zip(&report.accuracy_sum_by_model)
            {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

//! Property-based tests of the multi-model engine's accounting and of the
//! single-model compatibility contract.
//!
//! 1. **Per-model sums** — on random multi-model traces (1–3 models, random
//!    per-model rates/batches) against random multi-model cluster shapes,
//!    the [`SimReport::per_model`] breakdown's `offered`, `completed`,
//!    `unfinished` and `violations` columns sum **exactly** to the
//!    aggregate report, per-model violations are judged against each
//!    model's own QoS target, and every completion was served by an
//!    instance bound to its model (the engine's dispatch validation).
//! 2. **Single-model bit-identity** — a single-model trace driven through
//!    the multi-model constructor ([`SimEngine::new_multi`] with one
//!    service) produces a report bit-identical to the classic
//!    [`SimEngine::new`] path and to the preserved naive reference, so the
//!    multi-model redesign cannot perturb PR 3's reports.
//! 3. **Shard transparency** — on the same random multi-model cases, the
//!    [`ShardedEngine`] (one engine per model lane, merged through
//!    [`SimReport::merge`](kairos_sim::SimReport::merge)) reproduces the
//!    combined engine's report bit-for-bit — every field, f64s compared by
//!    bit pattern — under rayon pools of 1, 2, 4 and 8 threads.

use kairos_models::{calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec};
use kairos_sim::{
    run_trace, run_trace_naive, ClusterSpec, FcfsScheduler, Scheduler, ServiceSpec, ShardedEngine,
    SimEngine, SimulationOptions,
};
use kairos_workload::{ModelId, Query, Trace, TraceSpec};
use proptest::prelude::*;

/// The model kinds backing ids 0..3 in these tests.
const KINDS: [ModelKind; 3] = [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2];

fn services(n: usize) -> Vec<ServiceSpec> {
    KINDS[..n]
        .iter()
        .map(|&k| ServiceSpec::new(k, paper_calibration()))
        .collect()
}

/// Random model-tagged queries: (model, batch, gap) triples turned into a
/// sorted trace.
fn multi_trace(num_models: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..num_models, 1u32..900, 1u64..40_000), 1..120).prop_map(|raw| {
        let mut t = 0u64;
        let queries = raw
            .into_iter()
            .enumerate()
            .map(|(id, (model, batch, gap))| {
                t += gap;
                Query::for_model(id as u64, ModelId::new(model), batch, t)
            })
            .collect();
        Trace::from_queries(queries)
    })
}

/// Random per-model sub-cluster configs over the 4-type paper pool; every
/// model gets at least one instance somewhere so its queries can complete.
fn multi_spec(num_models: usize) -> impl Strategy<Value = ClusterSpec> {
    prop::collection::vec((0usize..3, 0usize..2, 0usize..2, 0usize..2), num_models).prop_map(
        |counts| {
            ClusterSpec::from_configs(
                counts
                    .into_iter()
                    .map(|(a, b, c, d)| Config::new(vec![a.max(1), b, c, d]))
                    .collect(),
            )
        },
    )
}

/// One full random case: model count, tagged trace, cluster spec, seed.
fn multi_case() -> impl Strategy<Value = (usize, Trace, ClusterSpec, u64)> {
    (1usize..=3).prop_flat_map(|n| (Just(n), multi_trace(n), multi_spec(n), 0u64..1_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn per_model_breakdown_sums_exactly_to_the_aggregate_report(
        case in multi_case(),
    ) {
        let (num_models, trace, spec, seed) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(num_models);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut scheduler = FcfsScheduler::new();
        let report = SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts)
            .run();

        // The QoS table carries each model's own target.
        for (m, s) in svc.iter().enumerate() {
            prop_assert_eq!(report.qos_for(ModelId::new(m)), s.qos_us());
        }

        let per = report.per_model();
        prop_assert_eq!(per.iter().map(|m| m.offered).sum::<usize>(), report.offered);
        prop_assert_eq!(per.iter().map(|m| m.completed).sum::<usize>(), report.completed());
        prop_assert_eq!(
            per.iter().map(|m| m.unfinished).sum::<usize>(),
            report.unfinished.len()
        );
        prop_assert_eq!(
            per.iter().map(|m| m.violations).sum::<usize>(),
            report.violations()
        );
        prop_assert_eq!(report.completed() + report.unfinished.len(), report.offered);

        // Per-model violations recomputed from raw records against each
        // model's own QoS match the breakdown.
        for row in &per {
            let recomputed = report
                .records
                .iter()
                .filter(|r| r.model == row.model)
                .filter(|r| !r.within_qos(report.qos_for(row.model)))
                .count()
                + report
                    .unfinished
                    .iter()
                    .filter(|u| u.model == row.model)
                    .filter(|u| {
                        report.horizon_us.saturating_sub(u.arrival_us)
                            > report.qos_for(row.model)
                    })
                    .count();
            prop_assert_eq!(row.violations, recomputed);
        }

        // Model binding was enforced: every completion ran on an instance of
        // the query's model (instances are laid out per spec slice).
        let mut owner = Vec::new();
        for slice in &spec.pools {
            for _ in 0..slice.config.total_instances() {
                owner.push(slice.model);
            }
        }
        for r in &report.records {
            prop_assert!(r.instance_index < owner.len());
            prop_assert_eq!(owner[r.instance_index], r.model);
        }
    }

    #[test]
    fn single_model_runs_are_bit_identical_across_all_three_paths(
        rate in 50.0f64..900.0,
        duration in 1u64..=2,
        seed in 0u64..500,
    ) {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(rate, duration as f64, seed).generate();
        let config = Config::new(vec![1, 1, 2, 0]);
        let opts = SimulationOptions { seed };

        let classic = run_trace(
            &pool, &config, &service, &trace, &mut FcfsScheduler::new(), &opts,
        );
        let spec = ClusterSpec::single(config.clone());
        let mut scheduler = FcfsScheduler::new();
        let multi = SimEngine::new_multi(
            &pool, &spec, &[&service], &trace, &mut scheduler, &opts,
        )
        .run();
        let naive = run_trace_naive(
            &pool, &config, &service, &trace, &mut FcfsScheduler::new(), &opts,
        );

        prop_assert_eq!(&classic.records, &multi.records);
        prop_assert_eq!(&classic.unfinished, &multi.unfinished);
        prop_assert_eq!(classic.horizon_us, multi.horizon_us);
        prop_assert_eq!(&classic.qos_by_model, &multi.qos_by_model);
        prop_assert_eq!(&classic.records, &naive.records);
        prop_assert_eq!(&classic.unfinished, &naive.unfinished);
        prop_assert_eq!(classic.horizon_us, naive.horizon_us);

        // A single-model report's breakdown is the aggregate itself.
        let per = multi.per_model();
        prop_assert_eq!(per.len(), 1);
        prop_assert_eq!(per[0].offered, multi.offered);
        prop_assert_eq!(per[0].violations, multi.violations());
    }

    #[test]
    fn sharded_engine_is_bit_identical_at_every_thread_count(
        case in multi_case(),
    ) {
        let (num_models, trace, spec, seed) = case;
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services(num_models);
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut scheduler = FcfsScheduler::new();
        let combined =
            SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts).run();

        let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts);
        for threads in [1usize, 2, 4, 8] {
            let workers = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = workers.install(|| {
                sharded.run(&trace, |_| Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>)
            });
            prop_assert_eq!(&combined.scheduler, &report.scheduler);
            prop_assert_eq!(&combined.records, &report.records);
            prop_assert_eq!(&combined.unfinished, &report.unfinished);
            prop_assert_eq!(combined.offered, report.offered);
            prop_assert_eq!(combined.horizon_us, report.horizon_us);
            prop_assert_eq!(combined.qos_us, report.qos_us);
            prop_assert_eq!(&combined.qos_by_model, &report.qos_by_model);
            prop_assert_eq!(
                combined.billed_dollars.to_bits(),
                report.billed_dollars.to_bits()
            );
            prop_assert_eq!(
                combined.billed_by_model.len(),
                report.billed_by_model.len()
            );
            for (a, b) in combined.billed_by_model.iter().zip(&report.billed_by_model) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(combined.events_processed, report.events_processed);
            prop_assert_eq!(combined.preemption_notices, report.preemption_notices);
            prop_assert_eq!(combined.preempted_instances, report.preempted_instances);
            prop_assert_eq!(combined.requeued_queries, report.requeued_queries);
        }
    }
}

//! Property-based tests of the cloud-market redesign's *strict
//! generalization* contract:
//!
//! 1. For any random trace, cluster shape and scheduler, attaching a
//!    constant-price [`ConstantMarket`] changes **nothing**: per-query
//!    records, unfinished sets, horizon and the billed dollar total are all
//!    bit-identical to the market-disabled run.
//! 2. The market-disabled billed total equals the static `cost() × hours`
//!    to within 1e-9 — time-integrated billing collapses to the paper's
//!    `count × price` arithmetic when prices never move.
//! 3. `Config::billed_cost` under a constant market equals `cost() × hours`
//!    for arbitrary intervals (the models-level half of the same contract).

use kairos_models::{
    calibration::paper_calibration, ec2, Config, ConstantMarket, Market, ModelKind, PoolSpec,
};
use kairos_sim::{run_trace, FcfsScheduler, ServiceSpec, SimEngine, SimulationOptions};
use kairos_workload::TraceSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn constant_market_is_bit_identical_to_disabled_market(
        seed in 1u64..500,
        rate in 50.0f64..1200.0,
        duration_ds in 3u32..10,
        counts in prop::collection::vec(0usize..3, 4),
    ) {
        prop_assume!(counts.iter().sum::<usize>() > 0);
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(rate, duration_ds as f64 / 10.0, seed).generate();
        let config = Config::new(counts);
        let opts = SimulationOptions { seed };

        let disabled = run_trace(
            &pool, &config, &service, &trace, &mut FcfsScheduler::new(), &opts,
        );
        let market = ConstantMarket::from_pool(&pool);
        let mut scheduler = FcfsScheduler::new();
        let enabled = SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
            .with_market(&market)
            .run();

        // Aggregates are bit-identical with the market disabled vs enabled.
        prop_assert_eq!(&disabled.records, &enabled.records);
        prop_assert_eq!(&disabled.unfinished, &enabled.unfinished);
        prop_assert_eq!(disabled.offered, enabled.offered);
        prop_assert_eq!(disabled.horizon_us, enabled.horizon_us);
        prop_assert_eq!(disabled.violations(), enabled.violations());
        // Billing must not depend on whether the constant market is attached.
        prop_assert_eq!(
            disabled.billed_dollars.to_bits(),
            enabled.billed_dollars.to_bits()
        );
        prop_assert_eq!(enabled.preemption_notices, 0);
        prop_assert_eq!(enabled.preempted_instances, 0);
        prop_assert_eq!(enabled.requeued_queries, 0);

        // Time-integrated billing over a static cluster is cost() × hours.
        let hours = disabled.horizon_us as f64 / 3.6e9;
        prop_assert!(
            (disabled.billed_dollars - config.cost(&pool) * hours).abs() < 1e-9,
            "billed {} vs static {}",
            disabled.billed_dollars,
            config.cost(&pool) * hours
        );
    }

    #[test]
    fn config_billed_cost_matches_static_cost_times_hours(
        counts in prop::collection::vec(0usize..7, 4),
        from_s in 0u64..2_000,
        span_s in 1u64..5_000,
    ) {
        let pool = PoolSpec::new(ec2::paper_pool());
        let market = ConstantMarket::from_pool(&pool);
        let config = Config::new(counts);
        let from_us = from_s * 1_000_000;
        let to_us = from_us + span_s * 1_000_000;
        let hours = (to_us - from_us) as f64 / 3.6e9;

        // cost_at under a constant market must be cost(), bit-for-bit.
        prop_assert_eq!(
            config.cost_at(&market, from_us).to_bits(),
            config.cost(&pool).to_bits()
        );
        let billed = config.billed_cost(&market, from_us, to_us);
        prop_assert!(
            (billed - config.cost(&pool) * hours).abs() < 1e-9,
            "billed {} vs {}",
            billed,
            config.cost(&pool) * hours
        );
        // Billing is additive over adjacent intervals.
        let mid = from_us + (to_us - from_us) / 2;
        let split = config.billed_cost(&market, from_us, mid)
            + config.billed_cost(&market, mid, to_us);
        prop_assert!((split - billed).abs() < 1e-9);
        // And the market's own integral agrees per offering.
        for i in 0..market.num_offerings() {
            let per = market.billed_cost(i, from_us, to_us);
            prop_assert!((per - pool.price(i) * hours).abs() < 1e-9);
        }
    }
}

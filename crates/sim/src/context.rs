//! Shared simulation context for configuration sweeps.
//!
//! The capacity search, Kairos+ and the baseline configuration searches all
//! evaluate *many* candidate configurations against the *same* workload.
//! [`SimContext`] bundles the immutable inputs of such a sweep — pool,
//! service and trace — so per-candidate evaluations are read-only fan-outs:
//! [`SimContext::run_many`] replays the trace against every candidate in
//! parallel with `rayon`, one fresh scheduler per candidate.

use crate::cluster::ServiceSpec;
use crate::engine::{SimEngine, SimulationOptions};
use crate::scheduler::Scheduler;
use crate::stats::SimReport;
use kairos_models::{Config, PoolSpec};
use kairos_workload::Trace;
use rayon::prelude::*;

/// Immutable inputs shared by every evaluation of a configuration sweep.
#[derive(Debug, Clone, Copy)]
pub struct SimContext<'a> {
    pool: &'a PoolSpec,
    service: &'a ServiceSpec,
    trace: &'a Trace,
    options: SimulationOptions,
}

impl<'a> SimContext<'a> {
    /// Creates a context with default simulation options.
    pub fn new(pool: &'a PoolSpec, service: &'a ServiceSpec, trace: &'a Trace) -> Self {
        Self::with_options(pool, service, trace, SimulationOptions::default())
    }

    /// Creates a context with explicit simulation options.
    pub fn with_options(
        pool: &'a PoolSpec,
        service: &'a ServiceSpec,
        trace: &'a Trace,
        options: SimulationOptions,
    ) -> Self {
        Self {
            pool,
            service,
            trace,
            options,
        }
    }

    /// The shared instance pool.
    pub fn pool(&self) -> &'a PoolSpec {
        self.pool
    }

    /// The shared service specification.
    pub fn service(&self) -> &'a ServiceSpec {
        self.service
    }

    /// The shared query trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Replays the shared trace against one candidate configuration.
    pub fn run(&self, config: &Config, scheduler: &mut dyn Scheduler) -> SimReport {
        SimEngine::new(
            self.pool,
            config,
            self.service,
            self.trace,
            scheduler,
            &self.options,
        )
        .run()
    }

    /// Decides whether one candidate meets the QoS target at `tolerance`
    /// without necessarily replaying the whole trace: the verdict equals
    /// `self.run(..).meets_qos(tolerance)` but the replay aborts as soon as
    /// the outcome is provable (see [`SimEngine::run_qos_probe`]).  This is
    /// the primitive behind early-exit capacity probes.
    pub fn probe_qos(
        &self,
        config: &Config,
        scheduler: &mut dyn Scheduler,
        tolerance: f64,
    ) -> bool {
        SimEngine::new(
            self.pool,
            config,
            self.service,
            self.trace,
            scheduler,
            &self.options,
        )
        .run_qos_probe(tolerance)
    }

    /// Replays the shared trace against every candidate configuration in
    /// parallel, constructing a fresh scheduler per candidate with
    /// `make_scheduler`.  Reports are returned in candidate order.
    pub fn run_many<F>(&self, configs: &[Config], make_scheduler: F) -> Vec<SimReport>
    where
        F: Fn() -> Box<dyn Scheduler> + Sync,
    {
        configs
            .par_iter()
            .map(|config| {
                let mut scheduler = make_scheduler();
                self.run(config, scheduler.as_mut())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_trace;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, mlmodel::ModelKind};
    use kairos_workload::TraceSpec;

    #[test]
    fn run_matches_run_trace() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(150.0, 1.0, 5).generate();
        let config = Config::new(vec![1, 0, 2, 0]);
        let ctx = SimContext::new(&pool, &service, &trace);
        let from_ctx = ctx.run(&config, &mut FcfsScheduler::new());
        let direct = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &SimulationOptions::default(),
        );
        assert_eq!(from_ctx.records, direct.records);
    }

    #[test]
    fn run_many_preserves_candidate_order_and_matches_sequential() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let trace = TraceSpec::production(200.0, 1.0, 6).generate();
        let configs = vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![1, 1, 0, 0]),
            Config::new(vec![2, 0, 2, 0]),
            Config::new(vec![1, 0, 3, 1]),
        ];
        let ctx = SimContext::new(&pool, &service, &trace);
        let parallel = ctx.run_many(&configs, || Box::new(FcfsScheduler::new()));
        assert_eq!(parallel.len(), configs.len());
        for (config, report) in configs.iter().zip(&parallel) {
            let sequential = ctx.run(config, &mut FcfsScheduler::new());
            assert_eq!(report.records, sequential.records, "mismatch for {config}");
        }
    }
}

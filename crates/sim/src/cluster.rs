//! The simulated heterogeneous serving cluster.
//!
//! A [`Cluster`] instantiates a [`Config`] (instance counts per type) over a
//! [`PoolSpec`] into concrete simulated instances, and a [`ServiceSpec`]
//! couples the served ML model with its ground-truth latency behaviour.
//! Matching the paper's deployment model (Sec. 6), every instance hosts one
//! model replica and serves exactly one query at a time.
//!
//! # Multi-model clusters
//!
//! Every instance is *bound* to the model whose replica it hosts
//! ([`SimInstance::model`], a compact [`ModelId`] index).  A multi-model
//! cluster is described by a [`ClusterSpec`]: one [`Config`] per served
//! model over the same shared [`PoolSpec`], instantiated as the
//! concatenation of the per-model sub-clusters.  The engine rejects any
//! dispatch whose query model differs from the target instance's binding.
//! Single-model deployments go through [`Cluster::new`], which binds every
//! instance to [`ModelId::DEFAULT`] and behaves exactly as before models
//! were first-class.
//!
//! # Dynamic reconfiguration
//!
//! The cluster is no longer fixed for the lifetime of a run: instances can be
//! [added](Cluster::add_instance) (they come online after a provisioning
//! delay) and [retired](Cluster::retire_instance).  Retirement is *graceful*:
//! a draining instance finishes the query it is serving and everything
//! already in its local queue, but accepts no new dispatches; once drained it
//! transitions to [`InstanceLifecycle::Retired`] and stops costing money.
//! Indices are stable — retired instances stay in the instance vector so that
//! completion records and scheduler views never dangle.

use kairos_models::{
    latency::{LatencyProfile, LatencyTable, NoiseModel},
    mlmodel::{spec, ModelKind, ModelSpec},
    Config, PoolSpec,
};
use kairos_workload::{ModelId, Query, TimeUs};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// The ML service being hosted: model identity plus ground-truth latency.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Which model is served (QoS target, batch cap).
    pub model: ModelSpec,
    /// Ground-truth latency profiles per instance type.
    pub latency: LatencyTable,
    /// Runtime latency noise (paper Fig. 16b injects 5 % Gaussian noise).
    pub noise: NoiseModel,
}

impl ServiceSpec {
    /// Creates a deterministic (noise-free) service for a model.
    pub fn new(kind: ModelKind, latency: LatencyTable) -> Self {
        Self {
            model: spec(kind),
            latency,
            noise: NoiseModel::None,
        }
    }

    /// Creates a service with latency noise.
    pub fn with_noise(kind: ModelKind, latency: LatencyTable, noise: NoiseModel) -> Self {
        Self {
            model: spec(kind),
            latency,
            noise,
        }
    }

    /// Nominal (noise-free) latency of a batch on an instance type, in ms.
    pub fn nominal_latency_ms(&self, instance_name: &str, batch: u32) -> f64 {
        self.latency
            .expect(self.model.kind, instance_name)
            .latency_ms(batch)
    }

    /// The ground-truth latency profile for an instance type.  Hot-path
    /// callers resolve each type once and keep the returned profile, so
    /// steady-state service-time math involves no table lookup.
    ///
    /// # Panics
    /// Panics if the (model, instance type) pair has no calibration.
    pub fn profile(&self, instance_name: &str) -> LatencyProfile {
        self.latency.expect(self.model.kind, instance_name)
    }

    /// Actual service time of a batch on an instance type, in microseconds,
    /// with the noise model applied.
    pub fn service_time_us<R: Rng + ?Sized>(
        &self,
        instance_name: &str,
        batch: u32,
        rng: &mut R,
    ) -> TimeUs {
        self.service_time_us_from_profile(&self.profile(instance_name), batch, rng)
    }

    /// [`Self::service_time_us`] with the latency profile already resolved —
    /// the hot-path form (no table lookup).  Both forms share one noise
    /// application and one quantization, so the optimized engine and the
    /// naive reference can never round differently.
    pub fn service_time_us_from_profile<R: Rng + ?Sized>(
        &self,
        profile: &LatencyProfile,
        batch: u32,
        rng: &mut R,
    ) -> TimeUs {
        quantize_service_ms(self.noise.apply(profile.latency_ms(batch), rng))
    }

    /// QoS target in microseconds.
    pub fn qos_us(&self) -> u64 {
        self.model.qos_us()
    }
}

/// Rounds a service latency in milliseconds to the simulator's microsecond
/// clock (at least 1 µs).  The **single** quantization every service-time
/// and nominal-time computation goes through — the bit-identity contract
/// between the optimized engine and the naive reference depends on there
/// being exactly one copy of this formula.
#[inline]
pub(crate) fn quantize_service_ms(latency_ms: f64) -> TimeUs {
    (latency_ms * 1000.0).round().max(1.0) as TimeUs
}

/// One model's slice of a multi-model cluster: the model id and the
/// per-type instance counts dedicated to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPool {
    /// The model every instance of this slice hosts.
    pub model: ModelId,
    /// Instance counts per pool type dedicated to the model.
    pub config: Config,
}

/// Description of a (possibly multi-model) cluster over one shared
/// [`PoolSpec`]: one [`Config`] per served model.  The cluster instantiates
/// the slices in declaration order, so instance indices are grouped by model
/// first, then by type (matching the single-model layout when the spec has
/// one slice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-model sub-cluster configurations.
    pub pools: Vec<ModelPool>,
}

impl ClusterSpec {
    /// A multi-model spec from explicit per-model slices.
    ///
    /// # Panics
    /// Panics if `pools` is empty or two slices bind the same model.
    pub fn new(pools: Vec<ModelPool>) -> Self {
        assert!(!pools.is_empty(), "a cluster spec needs at least one model");
        for (i, a) in pools.iter().enumerate() {
            assert!(
                pools[i + 1..].iter().all(|b| b.model != a.model),
                "duplicate model {} in cluster spec",
                a.model
            );
        }
        Self { pools }
    }

    /// The single-model spec ([`ModelId::DEFAULT`]) a bare [`Config`]
    /// denotes.
    pub fn single(config: Config) -> Self {
        Self {
            pools: vec![ModelPool {
                model: ModelId::DEFAULT,
                config,
            }],
        }
    }

    /// A spec binding `configs[i]` to model `i`, in slice order.
    pub fn from_configs(configs: Vec<Config>) -> Self {
        Self::new(
            configs
                .into_iter()
                .enumerate()
                .map(|(i, config)| ModelPool {
                    model: ModelId::new(i),
                    config,
                })
                .collect(),
        )
    }

    /// One past the largest model index bound by the spec — the length a
    /// dense per-model table (QoS, latency profiles) must have.
    pub fn model_table_len(&self) -> usize {
        self.pools
            .iter()
            .map(|p| p.model.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total hourly cost of the spec over a pool.
    pub fn cost(&self, pool: &PoolSpec) -> f64 {
        self.pools.iter().map(|p| p.config.cost(pool)).sum()
    }

    /// Total hourly cost of the spec under a market's prices at a point in
    /// virtual time (see [`kairos_models::Config::cost_at`]).
    pub fn cost_at(&self, market: &dyn kairos_models::Market, at_us: TimeUs) -> f64 {
        self.pools
            .iter()
            .map(|p| p.config.cost_at(market, at_us))
            .sum()
    }
}

/// Lifecycle state of a simulated instance.
///
/// ```text
/// add_instance ──► Active (provisioning until available_from_us, then live)
///                   │ retire_instance         │ market preemption notice
///                   ▼                         ▼
///                Draining                 Preempting (forced drain until
///      (finishes serving + local queue,    the notice deadline, no new
///       no new work)                       work)
///                   │ last local query        │ deadline: in-flight work
///                   │ completes               │ requeued, instance killed
///                   ▼                         ▼
///                Retired                  Preempted
///       (index kept for stability, costs nothing)
///
/// Active ◄──────────► Parked (serverless lane only: keep-alive expired,
///    dispatch pays a       unbilled, still dispatchable — the next
///    cold start to wake    dispatch reactivates it after the cold start)
/// ```
///
/// `Retired` is the graceful exit (the operator chose to give the instance
/// back); `Preempted` is the forced one (the cloud reclaimed it).  Both are
/// terminal and stop billing; they are kept distinct so preemption
/// accounting never conflates the two.  `Parked` is the serverless lane's
/// scale-to-zero state: the container is torn down (no billing) but the slot
/// remains schedulable, and a dispatch wakes it by paying the cold-start
/// latency before service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceLifecycle {
    /// Accepting dispatches (possibly still provisioning; queued work waits
    /// until `available_from_us`).
    Active,
    /// Retirement requested: drains its local queue, accepts nothing new.
    Draining,
    /// Fully drained and removed from service.
    Retired,
    /// A preemption notice landed: the instance races to drain until its
    /// kill deadline, accepting nothing new.  Billing continues (the cloud
    /// charges until it actually reclaims the machine).
    Preempting,
    /// Forcibly terminated by the market; any work it still held was
    /// requeued to the central queue.
    Preempted,
    /// Serverless lane: the container idled past its keep-alive deadline and
    /// was torn down.  The slot bills nothing while parked but remains
    /// dispatchable — the next dispatch reactivates it after paying the
    /// cold-start latency.
    Parked,
}

/// One simulated compute instance.
#[derive(Debug, Clone)]
pub struct SimInstance {
    /// Index of this instance in the cluster.
    pub index: usize,
    /// Index of the instance's type in the pool.
    pub type_index: usize,
    /// Cloud name of the type (interned; cloning is a pointer copy).
    pub type_name: Arc<str>,
    /// The model this instance hosts a replica of.  Dispatches for any other
    /// model are rejected by the engine.
    pub model: ModelId,
    /// Whether this is a base-type instance.
    pub is_base: bool,
    /// Lifecycle state (see [`InstanceLifecycle`]).
    pub lifecycle: InstanceLifecycle,
    /// Virtual time from which the instance can start serving (provisioning
    /// boundary; 0 for instances present since the start of the run).
    pub available_from_us: TimeUs,
    /// Query currently being served, with its service start time.
    pub serving: Option<(Query, TimeUs)>,
    /// Time at which the currently served query completes (meaningless when idle).
    pub busy_until_us: TimeUs,
    /// Queries dispatched to this instance but not yet started (local FIFO).
    pub local_queue: VecDeque<Query>,
}

impl SimInstance {
    /// Whether the instance is currently serving nothing and has no backlog.
    pub fn is_idle(&self) -> bool {
        self.serving.is_none() && self.local_queue.is_empty()
    }

    /// Number of queries at the instance (serving + locally queued).
    pub fn backlog(&self) -> usize {
        self.local_queue.len() + usize::from(self.serving.is_some())
    }

    /// Whether the scheduler may dispatch new work to this instance.  Parked
    /// instances remain dispatchable: the engine wakes them with a cold
    /// start.
    pub fn accepts_dispatches(&self) -> bool {
        matches!(
            self.lifecycle,
            InstanceLifecycle::Active | InstanceLifecycle::Parked
        )
    }

    /// Whether the instance is parked (serverless scale-to-zero: unbilled
    /// but still dispatchable).
    pub fn is_parked(&self) -> bool {
        self.lifecycle == InstanceLifecycle::Parked
    }

    /// Whether the instance has fully left service gracefully.
    pub fn is_retired(&self) -> bool {
        self.lifecycle == InstanceLifecycle::Retired
    }

    /// Whether the instance was forcibly reclaimed by the market.
    pub fn is_preempted(&self) -> bool {
        self.lifecycle == InstanceLifecycle::Preempted
    }

    /// Whether the instance has terminally left service (retired gracefully
    /// or preempted) and stopped billing.
    pub fn is_terminated(&self) -> bool {
        matches!(
            self.lifecycle,
            InstanceLifecycle::Retired | InstanceLifecycle::Preempted
        )
    }
}

/// A concrete set of simulated instances realizing a configuration,
/// reconfigurable at run time (see the module docs).
#[derive(Debug, Clone)]
pub struct Cluster {
    pool: PoolSpec,
    spec: ClusterSpec,
    /// Interned type names, one per pool type, shared by every instance.
    type_names: Vec<Arc<str>>,
    instances: Vec<SimInstance>,
}

impl Cluster {
    /// Instantiates a single-model configuration over a pool (every instance
    /// bound to [`ModelId::DEFAULT`]).
    ///
    /// # Panics
    /// Panics if the configuration dimension does not match the pool.
    pub fn new(pool: PoolSpec, config: Config) -> Self {
        Self::new_multi(pool, ClusterSpec::single(config))
    }

    /// Instantiates a multi-model cluster spec over a shared pool: the
    /// per-model slices are laid out in spec order, each slice's instances
    /// in type order.
    ///
    /// # Panics
    /// Panics if any slice's configuration dimension does not match the pool.
    pub fn new_multi(pool: PoolSpec, spec: ClusterSpec) -> Self {
        for slice in &spec.pools {
            assert_eq!(
                slice.config.counts().len(),
                pool.num_types(),
                "configuration does not match pool dimensionality"
            );
        }
        let type_names: Vec<Arc<str>> = pool
            .types()
            .iter()
            .map(|ty| Arc::from(ty.name.as_str()))
            .collect();
        let mut instances = Vec::new();
        for slice in &spec.pools {
            for (type_index, &count) in slice.config.counts().iter().enumerate() {
                let ty = &pool.types()[type_index];
                for _ in 0..count {
                    instances.push(SimInstance {
                        index: instances.len(),
                        type_index,
                        type_name: type_names[type_index].clone(),
                        model: slice.model,
                        is_base: ty.is_base,
                        lifecycle: InstanceLifecycle::Active,
                        available_from_us: 0,
                        serving: None,
                        busy_until_us: 0,
                        local_queue: VecDeque::new(),
                    });
                }
            }
        }
        Self {
            pool,
            spec,
            type_names,
            instances,
        }
    }

    /// Adds an instance of the given pool type bound to
    /// [`ModelId::DEFAULT`], available from `available_from_us`
    /// (provisioning boundary).  Returns the new instance's index.
    ///
    /// # Panics
    /// Panics if `type_index` is out of range for the pool.
    pub fn add_instance(&mut self, type_index: usize, available_from_us: TimeUs) -> usize {
        self.add_instance_for(ModelId::DEFAULT, type_index, available_from_us)
    }

    /// Adds an instance of the given pool type hosting `model`, available
    /// from `available_from_us`.  Returns the new instance's index.
    ///
    /// # Panics
    /// Panics if `type_index` is out of range for the pool.
    pub fn add_instance_for(
        &mut self,
        model: ModelId,
        type_index: usize,
        available_from_us: TimeUs,
    ) -> usize {
        let ty = &self.pool.types()[type_index];
        let index = self.instances.len();
        self.instances.push(SimInstance {
            index,
            type_index,
            type_name: self.type_names[type_index].clone(),
            model,
            is_base: ty.is_base,
            lifecycle: InstanceLifecycle::Active,
            available_from_us,
            serving: None,
            busy_until_us: 0,
            local_queue: VecDeque::new(),
        });
        index
    }

    /// Requests graceful retirement of an instance: it stops accepting
    /// dispatches immediately, finishes its local work, and transitions to
    /// [`InstanceLifecycle::Retired`] once drained (immediately if idle).
    /// Returns `true` if the instance is fully retired on return.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn retire_instance(&mut self, index: usize) -> bool {
        let inst = &mut self.instances[index];
        if inst.is_terminated() {
            return true;
        }
        if inst.lifecycle == InstanceLifecycle::Preempting {
            // Already racing its kill deadline; retirement is moot.
            return false;
        }
        if inst.is_idle() {
            inst.lifecycle = InstanceLifecycle::Retired;
            true
        } else {
            inst.lifecycle = InstanceLifecycle::Draining;
            false
        }
    }

    /// Marks a draining instance as retired if it has fully drained.  Called
    /// by the engine after every completion.  Returns `true` if the instance
    /// transitioned to retired in this call.
    pub(crate) fn settle_drained(&mut self, index: usize) -> bool {
        let inst = &mut self.instances[index];
        if inst.lifecycle == InstanceLifecycle::Draining && inst.is_idle() {
            inst.lifecycle = InstanceLifecycle::Retired;
            true
        } else {
            false
        }
    }

    /// Instance counts per pool type over dispatch-accepting instances
    /// (active, including those still provisioning), across every model.
    /// This is what a single-model reconfiguration driver diffs a target
    /// [`Config`] against.
    pub fn active_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.pool.num_types()];
        for inst in &self.instances {
            if inst.accepts_dispatches() {
                counts[inst.type_index] += 1;
            }
        }
        counts
    }

    /// Instance counts per pool type over dispatch-accepting instances bound
    /// to `model` — the per-model diff target of a multi-model driver.
    pub fn active_counts_for(&self, model: ModelId) -> Vec<usize> {
        let mut counts = vec![0usize; self.pool.num_types()];
        for inst in &self.instances {
            if inst.model == model && inst.accepts_dispatches() {
                counts[inst.type_index] += 1;
            }
        }
        counts
    }

    /// The currently dispatch-accepting instances as a [`Config`].
    pub fn active_config(&self) -> Config {
        Config::new(self.active_counts())
    }

    /// The currently dispatch-accepting instances bound to `model` as a
    /// [`Config`].
    pub fn active_config_for(&self, model: ModelId) -> Config {
        Config::new(self.active_counts_for(model))
    }

    /// The pool specification the cluster was built from.
    pub fn pool(&self) -> &PoolSpec {
        &self.pool
    }

    /// The interned type names, one per pool type (indexed by type index).
    /// This is the mapping handed to schedulers via
    /// [`crate::Scheduler::bind_types`].
    pub fn type_names(&self) -> &[Arc<str>] {
        &self.type_names
    }

    /// The configuration of the *first* model slice the cluster was
    /// initially instantiated with (the whole cluster for single-model
    /// deployments).  The live population may have diverged through
    /// reconfiguration; see [`Cluster::active_config`].
    pub fn config(&self) -> &Config {
        &self.spec.pools[0].config
    }

    /// The full multi-model spec the cluster was instantiated from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the cluster has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Immutable access to the instances.
    pub fn instances(&self) -> &[SimInstance] {
        &self.instances
    }

    /// Mutable access to the instances (used by the engine).
    pub fn instances_mut(&mut self) -> &mut [SimInstance] {
        &mut self.instances
    }

    /// Hourly cost of the cluster at the pool's listed prices: every
    /// instance that has not terminally left service (active, provisioning,
    /// draining or awaiting its preemption deadline) is billed.  Parked
    /// (serverless scale-to-zero) instances bill nothing.  Time- and
    /// market-aware dollar accounting lives in
    /// [`SimReport::billed_dollars`](crate::SimReport::billed_dollars).
    pub fn hourly_cost(&self) -> f64 {
        self.instances
            .iter()
            .filter(|inst| !inst.is_terminated() && !inst.is_parked())
            .map(|inst| self.pool.price(inst.type_index))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    #[test]
    fn cluster_instantiates_counts_in_type_order() {
        let cluster = Cluster::new(pool(), Config::new(vec![2, 1, 0, 3]));
        assert_eq!(cluster.len(), 6);
        assert_eq!(&*cluster.instances()[0].type_name, "g4dn.xlarge");
        assert!(cluster.instances()[0].is_base);
        assert_eq!(&*cluster.instances()[2].type_name, "c5n.2xlarge");
        assert_eq!(&*cluster.instances()[5].type_name, "t3.xlarge");
        assert!(cluster.instances().iter().all(|i| i.is_idle()));
        assert!(cluster.instances().iter().all(|i| i.accepts_dispatches()));
        assert!((cluster.hourly_cost() - (2.0 * 0.526 + 0.432 + 3.0 * 0.1664)).abs() < 1e-9);
    }

    #[test]
    fn type_names_are_interned_across_instances() {
        let cluster = Cluster::new(pool(), Config::new(vec![2, 0, 0, 0]));
        let a = &cluster.instances()[0].type_name;
        let b = &cluster.instances()[1].type_name;
        assert!(Arc::ptr_eq(a, b), "same type must share one allocation");
    }

    #[test]
    fn add_instance_appends_with_provisioning_boundary() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        let cost_before = cluster.hourly_cost();
        let idx = cluster.add_instance(2, 500_000);
        assert_eq!(idx, 1);
        let inst = &cluster.instances()[idx];
        assert_eq!(&*inst.type_name, "r5n.large");
        assert_eq!(inst.available_from_us, 500_000);
        assert!(inst.accepts_dispatches());
        assert!(cluster.hourly_cost() > cost_before);
        assert_eq!(cluster.active_counts(), vec![1, 0, 1, 0]);
    }

    #[test]
    fn idle_instance_retires_immediately_and_stops_billing() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![2, 0, 0, 0]));
        assert!(cluster.retire_instance(1));
        assert!(cluster.instances()[1].is_retired());
        assert_eq!(cluster.active_counts(), vec![1, 0, 0, 0]);
        assert!((cluster.hourly_cost() - 0.526).abs() < 1e-9);
        // Retiring again is a no-op.
        assert!(cluster.retire_instance(1));
    }

    #[test]
    fn busy_instance_drains_before_retiring() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        cluster.instances_mut()[0].serving = Some((Query::new(0, 5, 0), 0));
        assert!(!cluster.retire_instance(0));
        let inst = &cluster.instances()[0];
        assert_eq!(inst.lifecycle, InstanceLifecycle::Draining);
        assert!(!inst.accepts_dispatches());
        assert!(!inst.is_retired());
        // Still billed while draining.
        assert!((cluster.hourly_cost() - 0.526).abs() < 1e-9);
        // Not drained yet: settle keeps it draining.
        assert!(!cluster.settle_drained(0));
        cluster.instances_mut()[0].serving = None;
        assert!(cluster.settle_drained(0));
        assert!(cluster.instances()[0].is_retired());
        assert_eq!(cluster.hourly_cost(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn cluster_rejects_mismatched_config() {
        Cluster::new(pool(), Config::new(vec![1, 1]));
    }

    #[test]
    fn service_spec_latency_and_qos() {
        let svc = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        assert_eq!(svc.qos_us(), 350_000);
        let lat = svc.nominal_latency_ms("g4dn.xlarge", 100);
        assert!((lat - (60.0 + 0.24 * 100.0)).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(svc.service_time_us("g4dn.xlarge", 100, &mut rng), 84_000);
    }

    #[test]
    fn noisy_service_time_varies_but_stays_positive() {
        let svc = ServiceSpec::with_noise(
            ModelKind::Wnd,
            paper_calibration(),
            NoiseModel::Gaussian { std_fraction: 0.05 },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<TimeUs> = (0..100)
            .map(|_| svc.service_time_us("r5n.large", 50, &mut rng))
            .collect();
        assert!(times.iter().all(|&t| t > 0));
        let distinct: std::collections::HashSet<_> = times.iter().collect();
        assert!(distinct.len() > 10, "noise should spread service times");
    }

    #[test]
    fn multi_model_spec_lays_out_slices_in_order() {
        let spec = ClusterSpec::from_configs(vec![
            Config::new(vec![1, 0, 2, 0]),
            Config::new(vec![1, 1, 0, 0]),
        ]);
        assert_eq!(spec.model_table_len(), 2);
        let cluster = Cluster::new_multi(pool(), spec.clone());
        assert_eq!(cluster.len(), 5);
        let models: Vec<usize> = cluster
            .instances()
            .iter()
            .map(|i| i.model.index())
            .collect();
        assert_eq!(models, vec![0, 0, 0, 1, 1]);
        assert_eq!(cluster.active_counts_for(ModelId::new(0)), vec![1, 0, 2, 0]);
        assert_eq!(cluster.active_counts_for(ModelId::new(1)), vec![1, 1, 0, 0]);
        assert_eq!(cluster.active_counts(), vec![2, 1, 2, 0]);
        assert!((spec.cost(&pool()) - cluster.hourly_cost()).abs() < 1e-9);
        // A per-model addition lands on the right binding.
        let mut cluster = cluster;
        let idx = cluster.add_instance_for(ModelId::new(1), 3, 1_000);
        assert_eq!(cluster.instances()[idx].model, ModelId::new(1));
        assert_eq!(
            cluster.active_config_for(ModelId::new(1)).counts(),
            &[1, 1, 0, 1]
        );
    }

    #[test]
    fn single_model_cluster_binds_everything_to_the_default_model() {
        let cluster = Cluster::new(pool(), Config::new(vec![1, 1, 0, 0]));
        assert!(cluster
            .instances()
            .iter()
            .all(|i| i.model == ModelId::DEFAULT));
        assert_eq!(cluster.spec().pools.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate model")]
    fn duplicate_model_slices_rejected() {
        ClusterSpec::new(vec![
            ModelPool {
                model: ModelId::DEFAULT,
                config: Config::new(vec![1, 0, 0, 0]),
            },
            ModelPool {
                model: ModelId::DEFAULT,
                config: Config::new(vec![0, 1, 0, 0]),
            },
        ]);
    }

    #[test]
    fn backlog_accounting() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        let inst = &mut cluster.instances_mut()[0];
        assert_eq!(inst.backlog(), 0);
        inst.local_queue.push_back(Query::new(1, 10, 0));
        inst.serving = Some((Query::new(0, 5, 0), 0));
        assert_eq!(inst.backlog(), 2);
        assert!(!inst.is_idle());
    }
}

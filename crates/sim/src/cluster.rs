//! The simulated heterogeneous serving cluster.
//!
//! A [`Cluster`] instantiates a [`Config`] (instance counts per type) over a
//! [`PoolSpec`] into concrete simulated instances, and a [`ServiceSpec`]
//! couples the served ML model with its ground-truth latency behaviour.
//! Matching the paper's deployment model (Sec. 6), every instance hosts one
//! model replica and serves exactly one query at a time.
//!
//! # Dynamic reconfiguration
//!
//! The cluster is no longer fixed for the lifetime of a run: instances can be
//! [added](Cluster::add_instance) (they come online after a provisioning
//! delay) and [retired](Cluster::retire_instance).  Retirement is *graceful*:
//! a draining instance finishes the query it is serving and everything
//! already in its local queue, but accepts no new dispatches; once drained it
//! transitions to [`InstanceLifecycle::Retired`] and stops costing money.
//! Indices are stable — retired instances stay in the instance vector so that
//! completion records and scheduler views never dangle.

use kairos_models::{
    latency::{LatencyProfile, LatencyTable, NoiseModel},
    mlmodel::{spec, ModelKind, ModelSpec},
    Config, PoolSpec,
};
use kairos_workload::{Query, TimeUs};
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// The ML service being hosted: model identity plus ground-truth latency.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Which model is served (QoS target, batch cap).
    pub model: ModelSpec,
    /// Ground-truth latency profiles per instance type.
    pub latency: LatencyTable,
    /// Runtime latency noise (paper Fig. 16b injects 5 % Gaussian noise).
    pub noise: NoiseModel,
}

impl ServiceSpec {
    /// Creates a deterministic (noise-free) service for a model.
    pub fn new(kind: ModelKind, latency: LatencyTable) -> Self {
        Self {
            model: spec(kind),
            latency,
            noise: NoiseModel::None,
        }
    }

    /// Creates a service with latency noise.
    pub fn with_noise(kind: ModelKind, latency: LatencyTable, noise: NoiseModel) -> Self {
        Self {
            model: spec(kind),
            latency,
            noise,
        }
    }

    /// Nominal (noise-free) latency of a batch on an instance type, in ms.
    pub fn nominal_latency_ms(&self, instance_name: &str, batch: u32) -> f64 {
        self.latency
            .expect(self.model.kind, instance_name)
            .latency_ms(batch)
    }

    /// The ground-truth latency profile for an instance type.  Hot-path
    /// callers resolve each type once and keep the returned profile, so
    /// steady-state service-time math involves no table lookup.
    ///
    /// # Panics
    /// Panics if the (model, instance type) pair has no calibration.
    pub fn profile(&self, instance_name: &str) -> LatencyProfile {
        self.latency.expect(self.model.kind, instance_name)
    }

    /// Actual service time of a batch on an instance type, in microseconds,
    /// with the noise model applied.
    pub fn service_time_us<R: Rng + ?Sized>(
        &self,
        instance_name: &str,
        batch: u32,
        rng: &mut R,
    ) -> TimeUs {
        self.service_time_us_from_profile(&self.profile(instance_name), batch, rng)
    }

    /// [`Self::service_time_us`] with the latency profile already resolved —
    /// the hot-path form (no table lookup).  Both forms share one noise
    /// application and one quantization, so the optimized engine and the
    /// naive reference can never round differently.
    pub fn service_time_us_from_profile<R: Rng + ?Sized>(
        &self,
        profile: &LatencyProfile,
        batch: u32,
        rng: &mut R,
    ) -> TimeUs {
        quantize_service_ms(self.noise.apply(profile.latency_ms(batch), rng))
    }

    /// QoS target in microseconds.
    pub fn qos_us(&self) -> u64 {
        self.model.qos_us()
    }
}

/// Rounds a service latency in milliseconds to the simulator's microsecond
/// clock (at least 1 µs).  The **single** quantization every service-time
/// and nominal-time computation goes through — the bit-identity contract
/// between the optimized engine and the naive reference depends on there
/// being exactly one copy of this formula.
#[inline]
pub(crate) fn quantize_service_ms(latency_ms: f64) -> TimeUs {
    (latency_ms * 1000.0).round().max(1.0) as TimeUs
}

/// Lifecycle state of a simulated instance.
///
/// ```text
/// add_instance ──► Active (provisioning until available_from_us, then live)
///                     │ retire_instance
///                     ▼
///                  Draining (finishes serving + local queue, no new work)
///                     │ last local query completes
///                     ▼
///                  Retired (index kept for stability, costs nothing)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceLifecycle {
    /// Accepting dispatches (possibly still provisioning; queued work waits
    /// until `available_from_us`).
    Active,
    /// Retirement requested: drains its local queue, accepts nothing new.
    Draining,
    /// Fully drained and removed from service.
    Retired,
}

/// One simulated compute instance.
#[derive(Debug, Clone)]
pub struct SimInstance {
    /// Index of this instance in the cluster.
    pub index: usize,
    /// Index of the instance's type in the pool.
    pub type_index: usize,
    /// Cloud name of the type (interned; cloning is a pointer copy).
    pub type_name: Arc<str>,
    /// Whether this is a base-type instance.
    pub is_base: bool,
    /// Lifecycle state (see [`InstanceLifecycle`]).
    pub lifecycle: InstanceLifecycle,
    /// Virtual time from which the instance can start serving (provisioning
    /// boundary; 0 for instances present since the start of the run).
    pub available_from_us: TimeUs,
    /// Query currently being served, with its service start time.
    pub serving: Option<(Query, TimeUs)>,
    /// Time at which the currently served query completes (meaningless when idle).
    pub busy_until_us: TimeUs,
    /// Queries dispatched to this instance but not yet started (local FIFO).
    pub local_queue: VecDeque<Query>,
}

impl SimInstance {
    /// Whether the instance is currently serving nothing and has no backlog.
    pub fn is_idle(&self) -> bool {
        self.serving.is_none() && self.local_queue.is_empty()
    }

    /// Number of queries at the instance (serving + locally queued).
    pub fn backlog(&self) -> usize {
        self.local_queue.len() + usize::from(self.serving.is_some())
    }

    /// Whether the scheduler may dispatch new work to this instance.
    pub fn accepts_dispatches(&self) -> bool {
        self.lifecycle == InstanceLifecycle::Active
    }

    /// Whether the instance has fully left service.
    pub fn is_retired(&self) -> bool {
        self.lifecycle == InstanceLifecycle::Retired
    }
}

/// A concrete set of simulated instances realizing a configuration,
/// reconfigurable at run time (see the module docs).
#[derive(Debug, Clone)]
pub struct Cluster {
    pool: PoolSpec,
    config: Config,
    /// Interned type names, one per pool type, shared by every instance.
    type_names: Vec<Arc<str>>,
    instances: Vec<SimInstance>,
}

impl Cluster {
    /// Instantiates a configuration over a pool.
    ///
    /// # Panics
    /// Panics if the configuration dimension does not match the pool.
    pub fn new(pool: PoolSpec, config: Config) -> Self {
        assert_eq!(
            config.counts().len(),
            pool.num_types(),
            "configuration does not match pool dimensionality"
        );
        let type_names: Vec<Arc<str>> = pool
            .types()
            .iter()
            .map(|ty| Arc::from(ty.name.as_str()))
            .collect();
        let mut instances = Vec::new();
        for (type_index, &count) in config.counts().iter().enumerate() {
            let ty = &pool.types()[type_index];
            for _ in 0..count {
                instances.push(SimInstance {
                    index: instances.len(),
                    type_index,
                    type_name: type_names[type_index].clone(),
                    is_base: ty.is_base,
                    lifecycle: InstanceLifecycle::Active,
                    available_from_us: 0,
                    serving: None,
                    busy_until_us: 0,
                    local_queue: VecDeque::new(),
                });
            }
        }
        Self {
            pool,
            config,
            type_names,
            instances,
        }
    }

    /// Adds an instance of the given pool type, available from
    /// `available_from_us` (provisioning boundary).  Returns the new
    /// instance's index.
    ///
    /// # Panics
    /// Panics if `type_index` is out of range for the pool.
    pub fn add_instance(&mut self, type_index: usize, available_from_us: TimeUs) -> usize {
        let ty = &self.pool.types()[type_index];
        let index = self.instances.len();
        self.instances.push(SimInstance {
            index,
            type_index,
            type_name: self.type_names[type_index].clone(),
            is_base: ty.is_base,
            lifecycle: InstanceLifecycle::Active,
            available_from_us,
            serving: None,
            busy_until_us: 0,
            local_queue: VecDeque::new(),
        });
        index
    }

    /// Requests graceful retirement of an instance: it stops accepting
    /// dispatches immediately, finishes its local work, and transitions to
    /// [`InstanceLifecycle::Retired`] once drained (immediately if idle).
    /// Returns `true` if the instance is fully retired on return.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn retire_instance(&mut self, index: usize) -> bool {
        let inst = &mut self.instances[index];
        if inst.lifecycle == InstanceLifecycle::Retired {
            return true;
        }
        if inst.is_idle() {
            inst.lifecycle = InstanceLifecycle::Retired;
            true
        } else {
            inst.lifecycle = InstanceLifecycle::Draining;
            false
        }
    }

    /// Marks a draining instance as retired if it has fully drained.  Called
    /// by the engine after every completion.  Returns `true` if the instance
    /// transitioned to retired in this call.
    pub(crate) fn settle_drained(&mut self, index: usize) -> bool {
        let inst = &mut self.instances[index];
        if inst.lifecycle == InstanceLifecycle::Draining && inst.is_idle() {
            inst.lifecycle = InstanceLifecycle::Retired;
            true
        } else {
            false
        }
    }

    /// Instance counts per pool type over dispatch-accepting instances
    /// (active, including those still provisioning).  This is what a
    /// reconfiguration driver diffs a target [`Config`] against.
    pub fn active_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.pool.num_types()];
        for inst in &self.instances {
            if inst.accepts_dispatches() {
                counts[inst.type_index] += 1;
            }
        }
        counts
    }

    /// The currently dispatch-accepting instances as a [`Config`].
    pub fn active_config(&self) -> Config {
        Config::new(self.active_counts())
    }

    /// The pool specification the cluster was built from.
    pub fn pool(&self) -> &PoolSpec {
        &self.pool
    }

    /// The interned type names, one per pool type (indexed by type index).
    /// This is the mapping handed to schedulers via
    /// [`crate::Scheduler::bind_types`].
    pub fn type_names(&self) -> &[Arc<str>] {
        &self.type_names
    }

    /// The configuration the cluster was *initially* instantiated with.  The
    /// live population may have diverged through reconfiguration; see
    /// [`Cluster::active_config`].
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the cluster has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Immutable access to the instances.
    pub fn instances(&self) -> &[SimInstance] {
        &self.instances
    }

    /// Mutable access to the instances (used by the engine).
    pub fn instances_mut(&mut self) -> &mut [SimInstance] {
        &mut self.instances
    }

    /// Hourly cost of the cluster: every instance that has not fully retired
    /// (active, provisioning or draining) is billed.
    pub fn hourly_cost(&self) -> f64 {
        self.instances
            .iter()
            .filter(|inst| !inst.is_retired())
            .map(|inst| self.pool.price(inst.type_index))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    #[test]
    fn cluster_instantiates_counts_in_type_order() {
        let cluster = Cluster::new(pool(), Config::new(vec![2, 1, 0, 3]));
        assert_eq!(cluster.len(), 6);
        assert_eq!(&*cluster.instances()[0].type_name, "g4dn.xlarge");
        assert!(cluster.instances()[0].is_base);
        assert_eq!(&*cluster.instances()[2].type_name, "c5n.2xlarge");
        assert_eq!(&*cluster.instances()[5].type_name, "t3.xlarge");
        assert!(cluster.instances().iter().all(|i| i.is_idle()));
        assert!(cluster.instances().iter().all(|i| i.accepts_dispatches()));
        assert!((cluster.hourly_cost() - (2.0 * 0.526 + 0.432 + 3.0 * 0.1664)).abs() < 1e-9);
    }

    #[test]
    fn type_names_are_interned_across_instances() {
        let cluster = Cluster::new(pool(), Config::new(vec![2, 0, 0, 0]));
        let a = &cluster.instances()[0].type_name;
        let b = &cluster.instances()[1].type_name;
        assert!(Arc::ptr_eq(a, b), "same type must share one allocation");
    }

    #[test]
    fn add_instance_appends_with_provisioning_boundary() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        let cost_before = cluster.hourly_cost();
        let idx = cluster.add_instance(2, 500_000);
        assert_eq!(idx, 1);
        let inst = &cluster.instances()[idx];
        assert_eq!(&*inst.type_name, "r5n.large");
        assert_eq!(inst.available_from_us, 500_000);
        assert!(inst.accepts_dispatches());
        assert!(cluster.hourly_cost() > cost_before);
        assert_eq!(cluster.active_counts(), vec![1, 0, 1, 0]);
    }

    #[test]
    fn idle_instance_retires_immediately_and_stops_billing() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![2, 0, 0, 0]));
        assert!(cluster.retire_instance(1));
        assert!(cluster.instances()[1].is_retired());
        assert_eq!(cluster.active_counts(), vec![1, 0, 0, 0]);
        assert!((cluster.hourly_cost() - 0.526).abs() < 1e-9);
        // Retiring again is a no-op.
        assert!(cluster.retire_instance(1));
    }

    #[test]
    fn busy_instance_drains_before_retiring() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        cluster.instances_mut()[0].serving = Some((Query::new(0, 5, 0), 0));
        assert!(!cluster.retire_instance(0));
        let inst = &cluster.instances()[0];
        assert_eq!(inst.lifecycle, InstanceLifecycle::Draining);
        assert!(!inst.accepts_dispatches());
        assert!(!inst.is_retired());
        // Still billed while draining.
        assert!((cluster.hourly_cost() - 0.526).abs() < 1e-9);
        // Not drained yet: settle keeps it draining.
        assert!(!cluster.settle_drained(0));
        cluster.instances_mut()[0].serving = None;
        assert!(cluster.settle_drained(0));
        assert!(cluster.instances()[0].is_retired());
        assert_eq!(cluster.hourly_cost(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn cluster_rejects_mismatched_config() {
        Cluster::new(pool(), Config::new(vec![1, 1]));
    }

    #[test]
    fn service_spec_latency_and_qos() {
        let svc = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        assert_eq!(svc.qos_us(), 350_000);
        let lat = svc.nominal_latency_ms("g4dn.xlarge", 100);
        assert!((lat - (60.0 + 0.24 * 100.0)).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(svc.service_time_us("g4dn.xlarge", 100, &mut rng), 84_000);
    }

    #[test]
    fn noisy_service_time_varies_but_stays_positive() {
        let svc = ServiceSpec::with_noise(
            ModelKind::Wnd,
            paper_calibration(),
            NoiseModel::Gaussian { std_fraction: 0.05 },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<TimeUs> = (0..100)
            .map(|_| svc.service_time_us("r5n.large", 50, &mut rng))
            .collect();
        assert!(times.iter().all(|&t| t > 0));
        let distinct: std::collections::HashSet<_> = times.iter().collect();
        assert!(distinct.len() > 10, "noise should spread service times");
    }

    #[test]
    fn backlog_accounting() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        let inst = &mut cluster.instances_mut()[0];
        assert_eq!(inst.backlog(), 0);
        inst.local_queue.push_back(Query::new(1, 10, 0));
        inst.serving = Some((Query::new(0, 5, 0), 0));
        assert_eq!(inst.backlog(), 2);
        assert!(!inst.is_idle());
    }
}

//! The simulated heterogeneous serving cluster.
//!
//! A [`Cluster`] instantiates a [`Config`] (instance counts per type) over a
//! [`PoolSpec`] into concrete simulated instances, and a [`ServiceSpec`]
//! couples the served ML model with its ground-truth latency behaviour.
//! Matching the paper's deployment model (Sec. 6), every instance hosts one
//! model replica and serves exactly one query at a time.

use kairos_models::{
    latency::{LatencyTable, NoiseModel},
    mlmodel::{spec, ModelKind, ModelSpec},
    Config, PoolSpec,
};
use kairos_workload::{Query, TimeUs};
use rand::Rng;
use std::collections::VecDeque;

/// The ML service being hosted: model identity plus ground-truth latency.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Which model is served (QoS target, batch cap).
    pub model: ModelSpec,
    /// Ground-truth latency profiles per instance type.
    pub latency: LatencyTable,
    /// Runtime latency noise (paper Fig. 16b injects 5 % Gaussian noise).
    pub noise: NoiseModel,
}

impl ServiceSpec {
    /// Creates a deterministic (noise-free) service for a model.
    pub fn new(kind: ModelKind, latency: LatencyTable) -> Self {
        Self {
            model: spec(kind),
            latency,
            noise: NoiseModel::None,
        }
    }

    /// Creates a service with latency noise.
    pub fn with_noise(kind: ModelKind, latency: LatencyTable, noise: NoiseModel) -> Self {
        Self {
            model: spec(kind),
            latency,
            noise,
        }
    }

    /// Nominal (noise-free) latency of a batch on an instance type, in ms.
    pub fn nominal_latency_ms(&self, instance_name: &str, batch: u32) -> f64 {
        self.latency
            .expect(self.model.kind, instance_name)
            .latency_ms(batch)
    }

    /// Actual service time of a batch on an instance type, in microseconds,
    /// with the noise model applied.
    pub fn service_time_us<R: Rng + ?Sized>(
        &self,
        instance_name: &str,
        batch: u32,
        rng: &mut R,
    ) -> TimeUs {
        let nominal = self.nominal_latency_ms(instance_name, batch);
        let actual = self.noise.apply(nominal, rng);
        (actual * 1000.0).round().max(1.0) as TimeUs
    }

    /// QoS target in microseconds.
    pub fn qos_us(&self) -> u64 {
        self.model.qos_us()
    }
}

/// One simulated compute instance.
#[derive(Debug, Clone)]
pub struct SimInstance {
    /// Index of this instance in the cluster.
    pub index: usize,
    /// Index of the instance's type in the pool.
    pub type_index: usize,
    /// Cloud name of the type.
    pub type_name: String,
    /// Whether this is a base-type instance.
    pub is_base: bool,
    /// Query currently being served, with its service start time.
    pub serving: Option<(Query, TimeUs)>,
    /// Time at which the currently served query completes (meaningless when idle).
    pub busy_until_us: TimeUs,
    /// Queries dispatched to this instance but not yet started (local FIFO).
    pub local_queue: VecDeque<Query>,
}

impl SimInstance {
    /// Whether the instance is currently serving nothing and has no backlog.
    pub fn is_idle(&self) -> bool {
        self.serving.is_none() && self.local_queue.is_empty()
    }

    /// Number of queries at the instance (serving + locally queued).
    pub fn backlog(&self) -> usize {
        self.local_queue.len() + usize::from(self.serving.is_some())
    }
}

/// A concrete set of simulated instances realizing a configuration.
#[derive(Debug, Clone)]
pub struct Cluster {
    pool: PoolSpec,
    config: Config,
    instances: Vec<SimInstance>,
}

impl Cluster {
    /// Instantiates a configuration over a pool.
    ///
    /// # Panics
    /// Panics if the configuration dimension does not match the pool.
    pub fn new(pool: PoolSpec, config: Config) -> Self {
        assert_eq!(
            config.counts().len(),
            pool.num_types(),
            "configuration does not match pool dimensionality"
        );
        let mut instances = Vec::new();
        for (type_index, &count) in config.counts().iter().enumerate() {
            let ty = &pool.types()[type_index];
            for _ in 0..count {
                instances.push(SimInstance {
                    index: instances.len(),
                    type_index,
                    type_name: ty.name.clone(),
                    is_base: ty.is_base,
                    serving: None,
                    busy_until_us: 0,
                    local_queue: VecDeque::new(),
                });
            }
        }
        Self {
            pool,
            config,
            instances,
        }
    }

    /// The pool specification the cluster was built from.
    pub fn pool(&self) -> &PoolSpec {
        &self.pool
    }

    /// The configuration the cluster realizes.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Total number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the cluster has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Immutable access to the instances.
    pub fn instances(&self) -> &[SimInstance] {
        &self.instances
    }

    /// Mutable access to the instances (used by the engine).
    pub fn instances_mut(&mut self) -> &mut [SimInstance] {
        &mut self.instances
    }

    /// Hourly cost of the cluster.
    pub fn hourly_cost(&self) -> f64 {
        self.config.cost(&self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::{calibration::paper_calibration, ec2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> PoolSpec {
        PoolSpec::new(ec2::paper_pool())
    }

    #[test]
    fn cluster_instantiates_counts_in_type_order() {
        let cluster = Cluster::new(pool(), Config::new(vec![2, 1, 0, 3]));
        assert_eq!(cluster.len(), 6);
        assert_eq!(cluster.instances()[0].type_name, "g4dn.xlarge");
        assert!(cluster.instances()[0].is_base);
        assert_eq!(cluster.instances()[2].type_name, "c5n.2xlarge");
        assert_eq!(cluster.instances()[5].type_name, "t3.xlarge");
        assert!(cluster.instances().iter().all(|i| i.is_idle()));
        assert!((cluster.hourly_cost() - (2.0 * 0.526 + 0.432 + 3.0 * 0.1664)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn cluster_rejects_mismatched_config() {
        Cluster::new(pool(), Config::new(vec![1, 1]));
    }

    #[test]
    fn service_spec_latency_and_qos() {
        let svc = ServiceSpec::new(ModelKind::Rm2, paper_calibration());
        assert_eq!(svc.qos_us(), 350_000);
        let lat = svc.nominal_latency_ms("g4dn.xlarge", 100);
        assert!((lat - (60.0 + 0.24 * 100.0)).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(svc.service_time_us("g4dn.xlarge", 100, &mut rng), 84_000);
    }

    #[test]
    fn noisy_service_time_varies_but_stays_positive() {
        let svc = ServiceSpec::with_noise(
            ModelKind::Wnd,
            paper_calibration(),
            NoiseModel::Gaussian { std_fraction: 0.05 },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<TimeUs> = (0..100)
            .map(|_| svc.service_time_us("r5n.large", 50, &mut rng))
            .collect();
        assert!(times.iter().all(|&t| t > 0));
        let distinct: std::collections::HashSet<_> = times.iter().collect();
        assert!(distinct.len() > 10, "noise should spread service times");
    }

    #[test]
    fn backlog_accounting() {
        let mut cluster = Cluster::new(pool(), Config::new(vec![1, 0, 0, 0]));
        let inst = &mut cluster.instances_mut()[0];
        assert_eq!(inst.backlog(), 0);
        inst.local_queue.push_back(Query::new(1, 10, 0));
        inst.serving = Some((Query::new(0, 5, 0), 0));
        assert_eq!(inst.backlog(), 2);
        assert!(!inst.is_idle());
    }
}

//! Bucketed event calendar for the simulation engine's *timed* events
//! (completions and instance-ready notifications).
//!
//! The engine's original event store was one `BinaryHeap` holding every
//! future event including all trace arrivals, so each push/pop paid
//! `O(log n)` comparisons against a heap tens of thousands of entries deep.
//! Two observations make that heap unnecessary:
//!
//! 1. **Arrivals are known upfront and sorted** — the engine walks them with
//!    a cursor and never materializes them as events (see `SimEngine`).
//! 2. **Timed events are few**: at most one completion per serving instance
//!    plus one `Ready` per in-flight provisioning action, so the pending set
//!    is bounded by the cluster size, not the trace length.
//!
//! What remains is a classic [calendar queue] specialized for that sparse
//! regime: a power-of-two ring of buckets, each `bucket_width` microseconds
//! wide.  An event lands in bucket `(time >> shift) & mask`; events whose
//! virtual bucket lies beyond the current ring "lap" simply wait in their
//! physical bucket and are skipped until the cursor's lap reaches them.
//! `pop` scans forward from the cursor; because every bucket holds the
//! events of exactly one virtual bucket *within the active window*, the
//! first hit is the global minimum.  A full fruitless lap (possible when the
//! only pending events are far in the future, e.g. a provisioning `Ready`)
//! triggers a direct jump to the earliest pending event, bounding the scan.
//!
//! The bucket width is tuned by the engine to the trace's mean inter-arrival
//! gap, so cursor advancement amortizes to O(1) per processed event.
//!
//! [calendar queue]: https://dl.acm.org/doi/10.1145/63039.63045

use kairos_workload::TimeUs;

/// What a [`TimedEvent`] does when it fires.  Market events (price steps,
/// preemption notices) ride the same calendar as completions so the hot loop
/// needs no extra event source; `Kill` is the per-instance forced-termination
/// deadline scheduled when a preemption notice lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimedKind {
    /// A query finishes service on `instance_index`.
    Completion,
    /// A provisioned instance (`instance_index`) comes online.
    Ready,
    /// A materialized market event; `instance_index` is the index into the
    /// engine's market-event table, not an instance.
    Market,
    /// The preemption deadline of `instance_index`: whatever it still holds
    /// is requeued and the instance is killed.
    Kill,
    /// A materialized correlated-fault occurrence (zone outage boundary,
    /// capacity-shortage boundary, straggler onset); `instance_index` is the
    /// index into the engine's fault-occurrence table, not an instance.
    Fault,
    /// The frontmost fair-sharing completion of `instance_index`.
    /// Re-schedulable: the engine re-derives it whenever the instance's
    /// sharer count changes, so a popped event is only live when its
    /// generation stamp matches the instance's current one (lazy deletion).
    FlexCompletion,
    /// The dynamic batcher's forming-window timeout on `instance_index`.
    /// Generation-stamped like [`Self::FlexCompletion`]: firing the batch
    /// early (on reaching the size cap) invalidates the pending timeout.
    BatchTimeout,
    /// The serverless keep-alive deadline of an idle `instance_index`: on
    /// firing, the instance parks (stops billing) until the next dispatch
    /// wakes it with a cold start.  Generation-stamped like
    /// [`Self::FlexCompletion`]: a dispatch landing before the deadline
    /// invalidates the pending timer.
    KeepAliveExpiry,
}

/// A timed (non-arrival) engine event: a completion, a `Ready` boundary, a
/// market event, or a preemption kill deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimedEvent {
    /// Virtual time at which the event fires.
    pub time: TimeUs,
    /// Global tie-break sequence number (same numbering as arrival order).
    pub seq: u64,
    /// Index of the instance the event concerns (for [`TimedKind::Market`],
    /// the index of the market event instead).
    pub instance_index: usize,
    /// What the event does.
    pub kind: TimedKind,
    /// Lazy-deletion generation stamp for re-schedulable events
    /// ([`TimedKind::FlexCompletion`], [`TimedKind::BatchTimeout`]); `0` for
    /// the fixed-time kinds.  A popped event whose stamp trails the
    /// instance's current generation is stale and must be skipped.
    pub gen: u64,
}

impl TimedEvent {
    #[inline]
    fn key(&self) -> (TimeUs, u64) {
        (self.time, self.seq)
    }
}

/// Bucketed calendar queue ordered by `(time, seq)`.
#[derive(Debug)]
pub(crate) struct EventCalendar {
    buckets: Vec<Vec<TimedEvent>>,
    /// `log2(bucket width in µs)`.
    shift: u32,
    /// `buckets.len() - 1` (bucket count is a power of two).
    mask: u64,
    /// Virtual bucket the minimum search resumes from.  Invariant: no stored
    /// event has `time >> shift < cursor`.
    cursor: u64,
    len: usize,
    /// Cached location of the current minimum `(bucket, slot)`, invalidated
    /// by `push`/`pop`, so `peek` + `pop` pairs search once.
    cached_min: Option<(usize, usize)>,
    /// Total events ever pushed.
    scheduled: u64,
    /// Events invalidated in place (generation bump / preemption kill)
    /// without being removed — the lazy-deletion tombstone count.
    cancelled: u64,
    /// Stale (previously cancelled) events skipped at pop time.  At most
    /// `cancelled`: every skip consumes exactly one earlier cancellation, so
    /// `stale_popped <= cancelled` proves the ring is not silting up with
    /// unaccounted tombstones.
    stale_popped: u64,
}

/// Number of ring buckets (power of two).
const NUM_BUCKETS: usize = 1024;

impl EventCalendar {
    /// Creates a calendar whose bucket width is the smallest power of two at
    /// least `granularity_us` microseconds, clamped to a sane range.  Callers
    /// pass the mean inter-arrival gap of the driving trace so that cursor
    /// advancement costs O(1) amortized per event.
    pub fn with_granularity(granularity_us: TimeUs) -> Self {
        let clamped = granularity_us.clamp(64, 16_384);
        let shift = 64 - (clamped - 1).leading_zeros();
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            shift,
            mask: (NUM_BUCKETS - 1) as u64,
            cursor: 0,
            len: 0,
            cached_min: None,
            scheduled: 0,
            cancelled: 0,
            stale_popped: 0,
        }
    }

    /// Records that a pending event was invalidated in place (its generation
    /// stamp no longer matches): it stays in its bucket as a tombstone until
    /// popped and skipped.
    #[inline]
    pub fn note_cancelled(&mut self) {
        self.cancelled += 1;
    }

    /// Records that a stale (cancelled) event was popped and skipped.
    #[inline]
    pub fn note_stale_pop(&mut self) {
        self.stale_popped += 1;
        debug_assert!(
            self.stale_popped <= self.cancelled,
            "skipped an event that was never cancelled"
        );
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Events invalidated by lazy deletion (tombstones created).
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Stale events skipped at pop time (tombstones reclaimed).
    pub fn stale_popped(&self) -> u64 {
        self.stale_popped
    }

    /// Inserts an event.
    pub fn push(&mut self, event: TimedEvent) {
        let vbucket = event.time >> self.shift;
        // Defensive: keep the cursor invariant even if a caller schedules an
        // event before the current search position (the engine never does —
        // event times are at or after the clock, which trails the cursor).
        if vbucket < self.cursor {
            self.cursor = vbucket;
        }
        self.buckets[(vbucket & self.mask) as usize].push(event);
        self.len += 1;
        self.scheduled += 1;
        self.cached_min = None;
    }

    /// The `(time, seq)` key of the earliest pending event, if any.
    pub fn peek(&mut self) -> Option<(TimeUs, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.cached_min.is_none() {
            self.cached_min = Some(self.locate_min());
        }
        let (bucket, slot) = self.cached_min.expect("cached by the line above");
        Some(self.buckets[bucket][slot].key())
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<TimedEvent> {
        self.peek()?;
        let (bucket, slot) = self.cached_min.take().expect("peek caches the min");
        let event = self.buckets[bucket].swap_remove(slot);
        self.len -= 1;
        Some(event)
    }

    /// Finds the `(bucket, slot)` of the minimum event.  Caller guarantees
    /// `len > 0`.
    fn locate_min(&mut self) -> (usize, usize) {
        let mut fruitless = 0usize;
        loop {
            let bucket = (self.cursor & self.mask) as usize;
            let mut best: Option<(usize, (TimeUs, u64))> = None;
            for (slot, event) in self.buckets[bucket].iter().enumerate() {
                if event.time >> self.shift == self.cursor
                    && best.is_none_or(|(_, key)| event.key() < key)
                {
                    best = Some((slot, event.key()));
                }
            }
            if let Some((slot, _)) = best {
                return (bucket, slot);
            }
            self.cursor += 1;
            fruitless += 1;
            if fruitless >= self.buckets.len() {
                // Every pending event lies beyond a whole ring lap: jump the
                // cursor straight to the earliest one instead of spinning.
                self.cursor = self.min_vbucket();
                fruitless = 0;
            }
        }
    }

    /// Earliest virtual bucket among all pending events (O(len + buckets)).
    fn min_vbucket(&self) -> u64 {
        self.buckets
            .iter()
            .flatten()
            .map(|event| event.time >> self.shift)
            .min()
            .expect("min_vbucket called on an empty calendar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(time: TimeUs, seq: u64) -> TimedEvent {
        TimedEvent {
            time,
            seq,
            instance_index: 0,
            kind: TimedKind::Completion,
            gen: 0,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut cal = EventCalendar::with_granularity(100);
        for (t, s) in [(500u64, 3u64), (100, 1), (500, 2), (90, 7), (100_000, 0)] {
            cal.push(event(t, s));
        }
        let mut order = Vec::new();
        while let Some(e) = cal.pop() {
            order.push((e.time, e.seq));
        }
        assert_eq!(
            order,
            vec![(90, 7), (100, 1), (500, 2), (500, 3), (100_000, 0)]
        );
        assert_eq!(cal.len, 0);
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn handles_events_many_laps_ahead() {
        let mut cal = EventCalendar::with_granularity(64);
        // With 64 µs buckets and 1024 buckets, one lap covers ~65 ms; these
        // events are hundreds of laps apart.
        cal.push(event(30_000_000, 1));
        cal.push(event(5, 2));
        cal.push(event(900_000_000, 0));
        assert_eq!(cal.pop().unwrap().time, 5);
        assert_eq!(cal.pop().unwrap().time, 30_000_000);
        assert_eq!(cal.pop().unwrap().time, 900_000_000);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut cal = EventCalendar::with_granularity(1000);
        cal.push(event(10, 0));
        cal.push(event(20, 1));
        assert_eq!(cal.pop().unwrap().time, 10);
        // Push an event after the first pop, earlier than the remaining one.
        cal.push(event(15, 2));
        assert_eq!(cal.peek(), Some((15, 2)));
        assert_eq!(cal.pop().unwrap().time, 15);
        assert_eq!(cal.pop().unwrap().time, 20);
    }

    #[test]
    fn lazy_deletion_counters_track_schedules_cancels_and_skips() {
        let mut cal = EventCalendar::with_granularity(100);
        assert_eq!(
            (cal.scheduled(), cal.cancelled(), cal.stale_popped()),
            (0, 0, 0)
        );
        cal.push(event(10, 0));
        cal.push(event(20, 1));
        assert_eq!(cal.scheduled(), 2);
        // The caller invalidates the first event (generation bump) and later
        // skips it at pop time; the calendar only keeps the books.
        cal.note_cancelled();
        assert_eq!(cal.cancelled(), 1);
        let stale = cal.pop().unwrap();
        assert_eq!(stale.time, 10);
        cal.note_stale_pop();
        assert_eq!(cal.stale_popped(), 1);
        assert!(cal.stale_popped() <= cal.cancelled());
        assert_eq!(cal.pop().unwrap().time, 20);
    }

    #[test]
    fn granularity_is_clamped() {
        // Degenerate granularities must still produce a working calendar.
        let mut tiny = EventCalendar::with_granularity(0);
        tiny.push(event(1, 0));
        assert_eq!(tiny.pop().unwrap().time, 1);
        let mut huge = EventCalendar::with_granularity(u64::MAX / 2);
        huge.push(event(123, 0));
        assert_eq!(huge.pop().unwrap().time, 123);
    }
}

//! Serverless execution lane: per-model keep-alive policies over the
//! engine's container lifecycle.
//!
//! The configuration couples a [`KeepAlivePolicy`] per served model lane
//! (`None` keeps a lane always-on) with a [`ColdStartProfile`] pricing the
//! container init + model load an instance pays when a dispatch wakes it
//! from the [`Parked`](crate::cluster::InstanceLifecycle::Parked) state.
//! The engine-side mechanics (generation-stamped keep-alive timers, the
//! zero-billing park transition, cold-start injection before service) live
//! in [`SimEngine::with_serverless`](crate::SimEngine::with_serverless);
//! DESIGN.md's "Serverless lane" section has the correctness argument.

use kairos_models::{ColdStartProfile, KeepAlivePolicy};
use kairos_workload::TimeUs;

/// Serverless-lane configuration for one engine run: which model lanes may
/// scale to zero, under which keep-alive policy, and what waking a parked
/// container costs.
#[derive(Debug, Clone)]
pub struct ServerlessConfig {
    /// Per-model keep-alive policy, indexed by
    /// [`ModelId`](kairos_workload::ModelId).  `None` keeps that lane
    /// always-on: its instances never park and the engine's behaviour on the
    /// lane is bit-identical to the legacy path.
    pub policies: Vec<Option<KeepAlivePolicy>>,
    /// Cold-start cost (container init + model load) per pool type; a
    /// single-entry profile applies uniformly.
    pub cold_start: ColdStartProfile,
}

impl ServerlessConfig {
    /// A configuration applying one policy to every one of `num_models`
    /// lanes.
    pub fn uniform(
        policy: KeepAlivePolicy,
        num_models: usize,
        cold_start: ColdStartProfile,
    ) -> Self {
        Self {
            policies: vec![Some(policy); num_models],
            cold_start,
        }
    }

    /// Whether at least one lane carries a keep-alive policy (i.e. the
    /// configuration actually changes engine behaviour).
    pub fn any_enabled(&self) -> bool {
        self.policies.iter().any(|p| p.is_some())
    }
}

/// Per-instance serverless state, maintained by the engine alongside the
/// instance's lifecycle.  The keep-alive timer follows the batcher's lazy
/// deletion discipline: `park_gen` stamps the live pending expiry, and a
/// popped [`KeepAliveExpiry`](crate::calendar::TimedKind::KeepAliveExpiry)
/// whose stamp trails it is skipped as stale.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ServerlessState {
    /// The instance is parked: unbilled, container torn down, still
    /// dispatchable (the next dispatch pays the cold start).
    pub parked: bool,
    /// A keep-alive expiry with stamp [`Self::park_gen`] is pending on the
    /// calendar.
    pub park_pending: bool,
    /// Generation stamp of the live pending expiry; bumped to invalidate.
    pub park_gen: u64,
    /// Start of the current tracked idle period (timer arming time) — the
    /// observed idle gap recorded into the lane's histogram on the next
    /// dispatch.
    pub idle_since_us: TimeUs,
    /// Moment the instance parked (meaningless unless [`Self::parked`]).
    pub parked_since_us: TimeUs,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_models::ColdStartCost;

    #[test]
    fn uniform_config_covers_every_lane() {
        let config = ServerlessConfig::uniform(
            KeepAlivePolicy::fixed(10_000_000).unwrap(),
            3,
            ColdStartProfile::uniform(ColdStartCost::new(500_000, 1_500_000)),
        );
        assert_eq!(config.policies.len(), 3);
        assert!(config.any_enabled());
        assert!(config.policies.iter().all(|p| p.is_some()));
    }

    #[test]
    fn all_none_config_reports_disabled() {
        let config = ServerlessConfig {
            policies: vec![None, None],
            cold_start: ColdStartProfile::uniform(ColdStartCost::new(0, 0)),
        };
        assert!(!config.any_enabled());
    }
}

//! # kairos-sim
//!
//! Discrete-event simulator of a heterogeneous cloud inference-serving
//! cluster, the experimental substrate of this Kairos (HPDC'23) reproduction.
//!
//! The paper evaluates Kairos on real AWS EC2 instances; this crate replaces
//! that testbed with a virtual-time simulation that preserves the properties
//! the scheduler and estimator rely on: one query per instance at a time,
//! deterministic near-linear service latency, Poisson arrivals, and QoS
//! accounting on the 99th-percentile tail (see DESIGN.md, "Substitutions").
//!
//! * [`cluster`] — instances, clusters, and the served model ([`ServiceSpec`]);
//!   clusters reconfigure at run time (provisioning, graceful draining) and
//!   instances can be preempted by an attached cloud market
//!   ([`SimEngine::with_market`]): notice → forced drain → kill, with
//!   in-flight work requeued and billing settled at the market's
//!   time-varying prices.
//! * [`scheduler`] — the policy interface ([`Scheduler`]) plus a naive FCFS
//!   baseline.
//! * [`engine`] — the event loop: [`SimEngine`] with incremental scheduler
//!   views, online reconfiguration ([`EngineEvent`] stepping and
//!   [`EngineHook`]s), the [`engine::run_trace`] convenience wrapper, and the
//!   preserved [`engine::run_trace_naive`] reference.
//! * [`context`] — [`SimContext`], the shared-input bundle for parallel
//!   configuration sweeps.
//! * [`stats`] — per-query records and QoS/throughput metrics.
//! * [`capacity`] — the allowable-throughput ramp of Sec. 7.
//!
//! ```
//! use kairos_models::{calibration::paper_calibration, ec2, Config, PoolSpec, ModelKind};
//! use kairos_sim::{engine::run_trace, engine::SimulationOptions, FcfsScheduler, ServiceSpec};
//! use kairos_workload::TraceSpec;
//!
//! let pool = PoolSpec::new(ec2::paper_pool());
//! let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
//! let trace = TraceSpec::production(50.0, 1.0, 7).generate();
//! let mut scheduler = FcfsScheduler::new();
//! let report = run_trace(
//!     &pool,
//!     &Config::new(vec![1, 0, 1, 0]),
//!     &service,
//!     &trace,
//!     &mut scheduler,
//!     &SimulationOptions::default(),
//! );
//! assert_eq!(report.offered, trace.len());
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod capacity;
pub mod cluster;
pub mod context;
pub mod engine;
pub mod flex;
pub mod scheduler;
pub mod serverless;
pub mod sharded;
pub mod stats;

pub use capacity::{
    allowable_throughput, allowable_throughput_many, CapacityOptions, CapacityProber,
    CapacityResult,
};
pub use cluster::{Cluster, ClusterSpec, InstanceLifecycle, ModelPool, ServiceSpec, SimInstance};
pub use context::SimContext;
pub use engine::{
    run_trace, run_trace_naive, ClusterAction, EngineEvent, EngineHook, SimEngine,
    SimulationOptions,
};
pub use flex::{BatchingOptions, SharingMode, SharingOptions};
pub use scheduler::{
    idle_order, Dispatch, FcfsScheduler, InstanceView, Scheduler, SchedulingContext,
};
pub use serverless::ServerlessConfig;
pub use sharded::ShardedEngine;
pub use stats::{ModelReport, OutageRecord, QueryRecord, ServiceStats, SimReport, UnfinishedQuery};

//! The scheduling-policy interface of the simulated serving system.
//!
//! The central controller invokes a [`Scheduler`] every time the system state
//! changes (a query arrives or an instance completes a query).  The scheduler
//! sees the central queue of not-yet-dispatched queries and a view of every
//! instance (its type and when it will next be free) and returns a set of
//! (query, instance) dispatch decisions.  Dispatched queries are appended to
//! the target instance's local FIFO queue, which allows both
//! central-queue policies (Kairos, Ribbon, DRS — they only dispatch to idle
//! instances) and per-instance-queue policies (Clockwork) to be expressed.
//!
//! # Hot-path contract
//!
//! The engine invokes the scheduler once per event, so this interface is the
//! innermost loop of every capacity probe.  Three design points keep it
//! allocation-free in steady state:
//!
//! * [`Scheduler::schedule_into`] writes dispatches into a caller-owned
//!   buffer that the engine reuses across rounds.  Policies with internal
//!   scratch (the FCFS baseline here, the `kairos-baselines` schedulers)
//!   override it; the default delegates to [`Scheduler::schedule`] so simple
//!   or test policies only implement the allocating form.
//! * [`SchedulingContext::idle`] is an engine-maintained index of the
//!   dispatchable instances — the immediately usable ones in instance-index
//!   order, then the still-provisioning ones by `(provisioning boundary,
//!   instance_index)` — so idle-dispatch policies need not scan (or
//!   re-sort) every view.
//! * [`Scheduler::on_completion`] identifies the serving instance by its
//!   *pool type index* and the served model by its [`ModelId`] index, not
//!   strings, so completion-time learning needs no string hashing;
//!   [`Scheduler::bind_types`] / [`Scheduler::bind_models`] hand policies
//!   the index → name / index → model mappings once per run.
//!
//! # Multi-model scheduling
//!
//! Every [`InstanceView`] carries the [`ModelId`] its instance hosts, and
//! the context exposes the per-model QoS table
//! ([`SchedulingContext::qos_for`]).  The engine *rejects* dispatches whose
//! query model differs from the target instance's binding, so well-behaved
//! policies must pair queries with same-model instances only.

use kairos_models::mlmodel::ModelKind;
use kairos_workload::{ModelId, Query, TimeUs};
use std::sync::Arc;

/// Snapshot of one simulated instance as seen by a scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceView {
    /// Index of the instance within the cluster.
    pub instance_index: usize,
    /// Index of the instance's type within the pool specification.
    pub type_index: usize,
    /// Cloud name of the instance type (e.g. `"g4dn.xlarge"`).  Interned per
    /// type: cloning the view copies a pointer, not the string.
    pub type_name: Arc<str>,
    /// The model this instance hosts.  The engine rejects dispatches whose
    /// query model differs from this binding.
    pub model: ModelId,
    /// Whether the instance's type is the pool's base type.
    pub is_base: bool,
    /// Whether the instance accepts new dispatches.  `false` for draining and
    /// retired instances; the engine silently drops dispatches aimed at them,
    /// so well-behaved policies should skip non-accepting views.
    pub accepting: bool,
    /// Virtual time at which the instance will have drained its current query
    /// and everything already sitting in its local queue.  For an idle
    /// instance this is the time it went idle — some value `<= now` (or its
    /// provisioning boundary when the instance has not come online yet), so
    /// read availability through [`Self::is_idle`] / [`Self::remaining_us`]
    /// or clamp with `free_at_us.max(now_us)` rather than comparing raw idle
    /// values (the engine's hot path deliberately skips re-stamping every
    /// idle view to `now` each round).
    ///
    /// Only **accepting** views carry an exact value on the engine's hot
    /// path: views of retired instances are not refreshed (policies must not
    /// dispatch to them, so their projected free time is meaningless).
    pub free_at_us: TimeUs,
    /// Number of queries currently queued locally at the instance (including
    /// the one being served).
    pub backlog: usize,
}

impl InstanceView {
    /// Whether the instance is idle and dispatchable right now.  Draining and
    /// retired instances are never idle in this sense.
    pub fn is_idle(&self, now_us: TimeUs) -> bool {
        self.accepting && self.backlog == 0 && self.free_at_us <= now_us
    }

    /// Remaining busy time from `now` until the instance frees up.
    pub fn remaining_us(&self, now_us: TimeUs) -> TimeUs {
        self.free_at_us.saturating_sub(now_us)
    }
}

/// Everything a scheduler can see when making a dispatch decision.
#[derive(Debug)]
pub struct SchedulingContext<'a> {
    /// Current virtual time.
    pub now_us: TimeUs,
    /// Queries waiting in the central queue, in arrival order.
    pub queued: &'a [Query],
    /// View of every instance in the cluster.
    pub instances: &'a [InstanceView],
    /// Indices (into [`Self::instances`]) of the *dispatchable* backlog-free
    /// instances — accepting, nothing serving, nothing queued locally.  The
    /// immediately usable ones (`free_at_us <= now_us`) come first in
    /// instance-index order; instances still provisioning (`free_at_us >
    /// now_us`) follow, sorted by `(provisioning boundary, instance
    /// index)`.  [`Self::idle_now`] yields just the usable prefix.
    ///
    /// Maintained incrementally by the engine so policies that only dispatch
    /// to idle instances never scan the full view array.
    pub idle: &'a [u32],
    /// QoS target of the primary ([`ModelId::DEFAULT`]) model, in
    /// microseconds.  Single-model policies may read this directly;
    /// multi-model policies should resolve per query via
    /// [`Self::qos_for`].
    pub qos_us: u64,
    /// Per-model QoS targets in microseconds, indexed by [`ModelId`].  May
    /// be empty in hand-built single-model contexts, in which case
    /// [`Self::qos_for`] falls back to [`Self::qos_us`].
    pub qos_by_model: &'a [u64],
}

impl SchedulingContext<'_> {
    /// The prefix of [`Self::idle`] that is usable *right now* (provisioning
    /// boundary passed), still sorted by instance index.
    pub fn idle_now(&self) -> &[u32] {
        let cut = self
            .idle
            .partition_point(|&i| self.instances[i as usize].free_at_us <= self.now_us);
        &self.idle[..cut]
    }

    /// QoS target of a model in microseconds — an array index, never a
    /// string lookup.  Falls back to [`Self::qos_us`] when the table does
    /// not cover the model (hand-built single-model contexts).
    #[inline]
    pub fn qos_for(&self, model: ModelId) -> u64 {
        self.qos_by_model
            .get(model.index())
            .copied()
            .unwrap_or(self.qos_us)
    }
}

/// Reference computation of [`SchedulingContext::idle`] from a view array:
/// the dispatchable backlog-free instances sorted by `(free_at_us,
/// instance_index)`.  The ordering is purely view-derived — the clock enters
/// only later, through [`SchedulingContext::idle_now`]'s usable-prefix cut.
///
/// This is the oracle the engine's incremental index is tested against, and
/// what [`crate::engine::run_trace_naive`] rebuilds every round; tests that
/// hand-construct a [`SchedulingContext`] should use it too.
pub fn idle_order(views: &[InstanceView]) -> Vec<u32> {
    let mut idle: Vec<u32> = views
        .iter()
        .filter(|v| v.accepting && v.backlog == 0)
        .map(|v| v.instance_index as u32)
        .collect();
    idle.sort_by_key(|&i| (views[i as usize].free_at_us, i));
    idle
}

/// A dispatch decision: send `queued[query_index]` to `instances[instance_index]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Index into [`SchedulingContext::queued`].
    pub query_index: usize,
    /// Index into [`SchedulingContext::instances`] (same as
    /// [`InstanceView::instance_index`]).
    pub instance_index: usize,
}

/// A query-distribution policy.
pub trait Scheduler {
    /// Policy name used in reports and benchmark output.
    fn name(&self) -> &'static str;

    /// Decides which queued queries to dispatch to which instances.
    ///
    /// Constraints (validated by the engine):
    /// * each `query_index` appears at most once,
    /// * indices must be in range.
    ///
    /// A query may be dispatched to a busy instance, in which case it waits in
    /// that instance's local queue.  Queries left undecided stay in the
    /// central queue and are offered again at the next invocation.
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch>;

    /// Scratch-aware variant of [`Self::schedule`]: appends the dispatch
    /// decisions to `out` (cleared by the caller), which the engine reuses
    /// across rounds so steady-state scheduling performs no allocation.
    ///
    /// The default delegates to `schedule`; hot-path policies should override
    /// this and implement `schedule` in terms of it.
    fn schedule_into(&mut self, ctx: &SchedulingContext<'_>, out: &mut Vec<Dispatch>) {
        out.extend(self.schedule(ctx));
    }

    /// Hands the policy the pool's interned type names, indexed by the type
    /// index used in [`Self::on_completion`] and [`InstanceView::type_index`].
    /// Called once before a simulation starts.  The default ignores it.
    fn bind_types(&mut self, _type_names: &[Arc<str>]) {}

    /// Hands the policy the served models, indexed by [`ModelId`] — the
    /// model half of the `(type, model)` binding pair.  Policies that keep
    /// per-model latency knowledge (Clockwork, Kairos) resolve their
    /// per-`(type, model)` profiles here, once per run, so nothing on the
    /// scheduling hot path hashes a model name.  Called once before a
    /// simulation starts, after [`Self::bind_types`].  The default ignores
    /// it (single-model policies need no model table).
    fn bind_models(&mut self, _models: &[ModelKind]) {}

    /// Callback invoked when a query finishes, so policies can learn latency
    /// online (Kairos) or adapt thresholds.  The serving instance's pool type
    /// and the query's model are identified by index (see
    /// [`Self::bind_types`] / [`Self::bind_models`]) so the completion hot
    /// path involves no string comparison.  The default does nothing.
    fn on_completion(
        &mut self,
        _type_index: usize,
        _model: ModelId,
        _batch_size: u32,
        _service_ms: f64,
    ) {
    }
}

/// The naive first-come-first-serve policy: dispatch the oldest queued query
/// to any idle instance *hosting its model*, preferring base-type instances
/// (this is the query distribution used by Ribbon, paper Sec. 7, and the
/// "naive" scheme of Fig. 5).
///
/// On a single-model cluster every instance matches every query, so the
/// policy reduces exactly to the classic slot-by-slot pairing.
#[derive(Debug, Default, Clone)]
pub struct FcfsScheduler {
    /// Reusable ordering scratch (idle instances, base type first).
    order: Vec<u32>,
    /// Reusable taken-marks over the idle order (generation-stamped).
    taken: Vec<u64>,
    generation: u64,
}

impl FcfsScheduler {
    /// Creates the FCFS policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FcfsScheduler {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
        let mut out = Vec::new();
        self.schedule_into(ctx, &mut out);
        out
    }

    fn schedule_into(&mut self, ctx: &SchedulingContext<'_>, out: &mut Vec<Dispatch>) {
        // Idle instances, base type first (Ribbon "prefers instances of the
        // base type when multiple instances are available").
        self.order.clear();
        self.order.extend_from_slice(ctx.idle_now());
        self.order
            .sort_unstable_by_key(|&i| (!ctx.instances[i as usize].is_base, i));
        self.generation += 1;
        if self.taken.len() < self.order.len() {
            self.taken.resize(self.order.len(), 0);
        }
        let mut free_slots = self.order.len();
        // Oldest query first: each takes the first untaken idle instance
        // bound to its model.  On a single-model cluster every instance
        // matches, so query k pairs with idle slot k exactly as before.
        // `start` skips the fully-taken prefix so the single-model round is
        // O(min(queries, idle)) — slots are always consumed front to back
        // there, and a multi-model scan never re-walks dead slots.
        let mut start = 0usize;
        for (query_index, query) in ctx.queued.iter().enumerate() {
            if free_slots == 0 {
                break;
            }
            while start < self.order.len() && self.taken[start] == self.generation {
                start += 1;
            }
            let slot = self.order[start..].iter().enumerate().find(|&(off, &i)| {
                self.taken[start + off] != self.generation
                    && ctx.instances[i as usize].model == query.model
            });
            if let Some((off, &i)) = slot {
                self.taken[start + off] = self.generation;
                free_slots -= 1;
                out.push(Dispatch {
                    query_index,
                    instance_index: i as usize,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(idx: usize, is_base: bool, free_at: TimeUs) -> InstanceView {
        InstanceView {
            instance_index: idx,
            type_index: if is_base { 0 } else { 1 },
            type_name: if is_base {
                "g4dn.xlarge".into()
            } else {
                "r5n.large".into()
            },
            model: ModelId::DEFAULT,
            is_base,
            accepting: true,
            free_at_us: free_at,
            backlog: if free_at > 0 { 1 } else { 0 },
        }
    }

    #[test]
    fn instance_view_idleness() {
        let v = view(0, true, 0);
        assert!(v.is_idle(10));
        let busy = view(1, false, 50);
        assert!(!busy.is_idle(10));
        assert_eq!(busy.remaining_us(10), 40);
        assert_eq!(busy.remaining_us(60), 0);
        // A draining instance is never idle, even when free.
        let mut draining = view(2, true, 0);
        draining.accepting = false;
        assert!(!draining.is_idle(10));
    }

    #[test]
    fn idle_order_filters_and_sorts() {
        let mut views = vec![view(0, false, 700), view(1, true, 0), view(2, false, 0)];
        views[0].backlog = 0; // provisioning: idle but not usable yet
        let idle = idle_order(&views);
        // Usable instances by index first, then the provisioning one.
        assert_eq!(idle, vec![1, 2, 0]);
        let ctx = SchedulingContext {
            now_us: 10,
            queued: &[],
            instances: &views,
            idle: &idle,
            qos_us: 1_000_000,
            qos_by_model: &[],
        };
        assert_eq!(ctx.idle_now(), &[1, 2]);
    }

    #[test]
    fn fcfs_prefers_base_instances() {
        let queued = vec![Query::new(0, 10, 0), Query::new(1, 20, 0)];
        let instances = vec![view(0, false, 0), view(1, true, 0), view(2, false, 500)];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 0,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 1_000_000,
            qos_by_model: &[],
        };
        let mut fcfs = FcfsScheduler::new();
        let plan = fcfs.schedule(&ctx);
        assert_eq!(plan.len(), 2);
        // Oldest query goes to the base instance.
        assert_eq!(
            plan[0],
            Dispatch {
                query_index: 0,
                instance_index: 1
            }
        );
        assert_eq!(
            plan[1],
            Dispatch {
                query_index: 1,
                instance_index: 0
            }
        );
    }

    #[test]
    fn fcfs_ignores_busy_instances() {
        let queued = vec![Query::new(0, 10, 0)];
        let instances = vec![view(0, true, 900)];
        let idle = idle_order(&instances);
        let ctx = SchedulingContext {
            now_us: 100,
            queued: &queued,
            instances: &instances,
            idle: &idle,
            qos_us: 1_000_000,
            qos_by_model: &[],
        };
        assert!(FcfsScheduler::new().schedule(&ctx).is_empty());
    }
}

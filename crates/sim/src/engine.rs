//! Discrete-event simulation engine.
//!
//! The engine plays a [`Trace`] of queries against a [`Cluster`] under a
//! pluggable [`Scheduler`] policy, using a virtual clock in microseconds.
//! It reproduces the serving model of the paper's implementation (Sec. 6):
//! a central controller receives all queries, decides the query-to-instance
//! mapping, and each instance serves exactly one query at a time from its own
//! FIFO of dispatched queries.
//!
//! Events are (a) query arrivals and (b) query completions; the scheduler is
//! consulted after every event so it can react to freed capacity immediately.

use crate::cluster::{Cluster, ServiceSpec};
use crate::scheduler::{Dispatch, InstanceView, Scheduler, SchedulingContext};
use crate::stats::{QueryRecord, SimReport, UnfinishedQuery};
use kairos_models::{Config, PoolSpec};
use kairos_workload::{Query, TimeUs, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Options controlling one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimulationOptions {
    /// Seed of the service-time noise RNG (ignored when the service is
    /// deterministic, which is the paper's default).
    pub seed: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self { seed: 0 }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Arrival(Query),
    Completion { instance_index: usize },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: TimeUs,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs one simulation of `trace` against `config` on `pool` serving
/// `service`, distributing queries with `scheduler`.
pub fn run_trace(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: &SimulationOptions,
) -> SimReport {
    let mut cluster = Cluster::new(pool.clone(), config.clone());
    let mut rng = StdRng::seed_from_u64(options.seed);
    let qos_us = service.qos_us();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for q in &trace.queries {
        heap.push(Reverse(Event { time: q.arrival_us, seq, kind: EventKind::Arrival(*q) }));
        seq += 1;
    }

    let mut central_queue: Vec<Query> = Vec::new();
    let mut records: Vec<QueryRecord> = Vec::new();
    let mut last_event: TimeUs = 0;

    // Helper to start the next locally queued query on an idle instance.
    fn start_next(
        cluster: &mut Cluster,
        service: &ServiceSpec,
        rng: &mut StdRng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        instance_index: usize,
        now: TimeUs,
    ) {
        let inst = &mut cluster.instances_mut()[instance_index];
        debug_assert!(inst.serving.is_none(), "instance already serving a query");
        if let Some(query) = inst.local_queue.pop_front() {
            let service_us = service.service_time_us(&inst.type_name, query.batch_size, rng);
            inst.serving = Some((query, now));
            inst.busy_until_us = now + service_us;
            heap.push(Reverse(Event {
                time: inst.busy_until_us,
                seq: *seq,
                kind: EventKind::Completion { instance_index },
            }));
            *seq += 1;
        }
    }

    // Helper building the scheduler's view of the cluster.
    fn build_views(cluster: &Cluster, service: &ServiceSpec, now: TimeUs) -> Vec<InstanceView> {
        cluster
            .instances()
            .iter()
            .map(|inst| {
                let mut free_at = if inst.serving.is_some() {
                    inst.busy_until_us.max(now)
                } else {
                    now
                };
                // Account for the nominal service time of locally queued work.
                for q in &inst.local_queue {
                    let nominal_ms = service.nominal_latency_ms(&inst.type_name, q.batch_size);
                    free_at += (nominal_ms * 1000.0).round().max(1.0) as TimeUs;
                }
                InstanceView {
                    instance_index: inst.index,
                    type_index: inst.type_index,
                    type_name: inst.type_name.clone(),
                    is_base: inst.is_base,
                    free_at_us: free_at,
                    backlog: inst.backlog(),
                }
            })
            .collect()
    }

    // Consult the scheduler and apply its dispatch decisions.
    fn invoke_scheduler(
        cluster: &mut Cluster,
        service: &ServiceSpec,
        scheduler: &mut dyn Scheduler,
        central_queue: &mut Vec<Query>,
        rng: &mut StdRng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        now: TimeUs,
        qos_us: u64,
    ) {
        if central_queue.is_empty() {
            return;
        }
        let views = build_views(cluster, service, now);
        let ctx = SchedulingContext {
            now_us: now,
            queued: central_queue,
            instances: &views,
            qos_us,
        };
        let mut plan: Vec<Dispatch> = scheduler.schedule(&ctx);

        // Validate: indices in range, each query dispatched at most once.
        let mut seen = vec![false; central_queue.len()];
        plan.retain(|d| {
            let valid = d.query_index < central_queue.len()
                && d.instance_index < cluster.len()
                && !seen[d.query_index];
            if valid {
                seen[d.query_index] = true;
            }
            valid
        });

        // Dispatch in the order returned by the policy.
        for d in &plan {
            let query = central_queue[d.query_index];
            let needs_start = {
                let inst = &mut cluster.instances_mut()[d.instance_index];
                inst.local_queue.push_back(query);
                inst.serving.is_none()
            };
            if needs_start {
                start_next(cluster, service, rng, heap, seq, d.instance_index, now);
            }
        }

        // Remove dispatched queries from the central queue (descending order
        // so indices stay valid).
        let mut dispatched: Vec<usize> = plan.iter().map(|d| d.query_index).collect();
        dispatched.sort_unstable_by(|a, b| b.cmp(a));
        for idx in dispatched {
            central_queue.remove(idx);
        }
    }

    while let Some(Reverse(event)) = heap.pop() {
        let now = event.time;
        last_event = last_event.max(now);
        match event.kind {
            EventKind::Arrival(query) => {
                central_queue.push(query);
            }
            EventKind::Completion { instance_index } => {
                let (query, start_us, type_index, type_name) = {
                    let inst = &mut cluster.instances_mut()[instance_index];
                    let (query, start_us) =
                        inst.serving.take().expect("completion event for idle instance");
                    (query, start_us, inst.type_index, inst.type_name.clone())
                };
                records.push(QueryRecord {
                    id: query.id,
                    batch_size: query.batch_size,
                    arrival_us: query.arrival_us,
                    start_us,
                    completion_us: now,
                    instance_index,
                    type_index,
                });
                let service_ms = (now - start_us) as f64 / 1000.0;
                scheduler.on_completion(&type_name, query.batch_size, service_ms);
                // Start the next locally queued query, if any.
                start_next(&mut cluster, service, &mut rng, &mut heap, &mut seq, instance_index, now);
            }
        }
        invoke_scheduler(
            &mut cluster,
            service,
            scheduler,
            &mut central_queue,
            &mut rng,
            &mut heap,
            &mut seq,
            now,
            qos_us,
        );
    }

    // Anything still queued (centrally or locally) never completed.
    let mut unfinished: Vec<UnfinishedQuery> = central_queue
        .iter()
        .map(|q| UnfinishedQuery { id: q.id, batch_size: q.batch_size, arrival_us: q.arrival_us })
        .collect();
    for inst in cluster.instances() {
        for q in &inst.local_queue {
            unfinished.push(UnfinishedQuery {
                id: q.id,
                batch_size: q.batch_size,
                arrival_us: q.arrival_us,
            });
        }
        if let Some((q, _)) = inst.serving {
            unfinished.push(UnfinishedQuery {
                id: q.id,
                batch_size: q.batch_size,
                arrival_us: q.arrival_us,
            });
        }
    }

    let horizon_us = last_event.max(trace.duration_us());
    SimReport {
        scheduler: scheduler.name().to_string(),
        records,
        unfinished,
        offered: trace.len(),
        horizon_us,
        qos_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, mlmodel::ModelKind};
    use kairos_workload::TraceSpec;

    fn setup() -> (PoolSpec, ServiceSpec) {
        (
            PoolSpec::new(ec2::paper_pool()),
            ServiceSpec::new(ModelKind::Wnd, paper_calibration()),
        )
    }

    #[test]
    fn every_offered_query_is_accounted_for() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(100.0, 1.0, 1).generate();
        let config = Config::new(vec![2, 0, 1, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(&pool, &config, &service, &trace, &mut fcfs, &SimulationOptions::default());
        assert_eq!(report.offered, trace.len());
        assert_eq!(report.completed() + report.unfinished.len(), trace.len());
        assert_eq!(report.scheduler, "fcfs");
    }

    #[test]
    fn completions_never_precede_arrivals_and_service_is_serial() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(200.0, 1.0, 2).generate();
        let config = Config::new(vec![1, 1, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(&pool, &config, &service, &trace, &mut fcfs, &SimulationOptions::default());
        for r in &report.records {
            assert!(r.start_us >= r.arrival_us);
            assert!(r.completion_us > r.start_us);
        }
        // One query at a time per instance: service intervals on the same
        // instance must not overlap.
        let mut by_instance: std::collections::HashMap<usize, Vec<(TimeUs, TimeUs)>> =
            std::collections::HashMap::new();
        for r in &report.records {
            by_instance.entry(r.instance_index).or_default().push((r.start_us, r.completion_us));
        }
        for intervals in by_instance.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping service intervals {w:?}");
            }
        }
    }

    #[test]
    fn light_load_on_gpu_meets_qos() {
        let (pool, service) = setup();
        // 20 QPS against one GPU that serves a mean query in ~7 ms: trivially feasible.
        let trace = TraceSpec::production(20.0, 2.0, 3).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(&pool, &config, &service, &trace, &mut fcfs, &SimulationOptions::default());
        assert!(report.meets_qos(0.01), "violations: {}", report.violation_fraction());
        assert!(report.unfinished.is_empty());
    }

    #[test]
    fn overload_is_detected_as_violations() {
        let (pool, service) = setup();
        // 2000 QPS against a single GPU is far beyond capacity.
        let trace = TraceSpec::production(2000.0, 1.0, 4).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(&pool, &config, &service, &trace, &mut fcfs, &SimulationOptions::default());
        assert!(!report.meets_qos(0.05), "overload should violate QoS");
    }

    #[test]
    fn deterministic_given_seed_and_trace() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(150.0, 1.0, 9).generate();
        let config = Config::new(vec![1, 1, 1, 1]);
        let opts = SimulationOptions { seed: 7 };
        let a = run_trace(&pool, &config, &service, &trace, &mut FcfsScheduler::new(), &opts);
        let b = run_trace(&pool, &config, &service, &trace, &mut FcfsScheduler::new(), &opts);
        assert_eq!(a.records, b.records);
        assert_eq!(a.horizon_us, b.horizon_us);
    }
}

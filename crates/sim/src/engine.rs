//! Discrete-event simulation engine.
//!
//! The engine plays a [`Trace`] of queries against a [`Cluster`] under a
//! pluggable [`Scheduler`] policy, using a virtual clock in microseconds.
//! It reproduces the serving model of the paper's implementation (Sec. 6):
//! a central controller receives all queries, decides the query-to-instance
//! mapping, and each instance serves exactly one query at a time from its own
//! FIFO of dispatched queries.
//!
//! Events are (a) query arrivals and (b) query completions; the scheduler is
//! consulted after every event so it can react to freed capacity immediately.
//!
//! # Hot-path architecture
//!
//! [`SimEngine`] owns the clock, the event sources, the central queue, the
//! cluster and the RNG, and exposes `step()` / `run()` / `report()` so
//! callers (the capacity search, Kairos+, the baseline searches and the
//! bench harness) all drive simulations through one API.  Steady-state
//! execution performs **zero heap allocations**; per-event work is
//! proportional to the instances the event touches plus — only on rounds
//! where queries are actually waiting — an O(idle instances) clock clamp,
//! never a full-cluster, queue-walking sweep.
//! The moving parts (see DESIGN.md, "Hot-path architecture"):
//!
//! * **Arrival cursor + event calendar** — trace arrivals are never
//!   materialized as heap entries: the engine walks the (sorted) query
//!   vector with a cursor.  The few genuinely dynamic events (one completion
//!   per serving instance, one `Ready` per provisioning action) live in a
//!   bucketed [calendar queue](crate::calendar) tuned to the trace's arrival
//!   granularity.
//! * **Incremental views** — each [`InstanceView`] is updated at the moment
//!   its instance changes (dispatch, service start, completion, lifecycle),
//!   never by sweeping the cluster.  Idle instances' `free_at_us` tracks the
//!   clock lazily via the idle index below.
//! * **Idle-instance index** — the engine maintains the dispatchable
//!   backlog-free instances as a sorted index
//!   ([`SchedulingContext::idle`]), split into a free list (boundary
//!   passed, sorted by instance index) and a pending list (still
//!   provisioning, sorted by ready time); entries migrate as the clock
//!   passes their provisioning boundary.
//! * **Scratch buffers** — the dispatch plan, the duplicate-dispatch marks
//!   (generation-stamped, never cleared), and the removal sweep all reuse
//!   engine-owned buffers; [`Scheduler::schedule_into`] lets policies fill
//!   the plan without allocating.
//! * **Interned latency profiles** — per-type [`LatencyProfile`]s are
//!   resolved once at construction, so service-time math involves no string
//!   hashing.
//!
//! The original per-event full rebuild is preserved as [`run_trace_naive`]
//! (and [`SimEngine::recompute_views`]) — it is the reference against which
//! determinism and the incremental state are tested, and the baseline for
//! the `simulator` Criterion bench.
//!
//! # Online reconfiguration
//!
//! The engine is not a closed trace replayer: an external driver can observe
//! every event and mutate the cluster mid-run.  Two mechanisms exist:
//!
//! * **Stepping** — [`SimEngine::step_event`] processes one event and returns
//!   an owned [`EngineEvent`] describing it; between steps the driver may
//!   call [`SimEngine::add_instance`] / [`SimEngine::retire_instance`] (or
//!   [`SimEngine::apply`] with [`ClusterAction`]s).  This is how
//!   `kairos_core::ServingSystem` runs the Kairos controller in the loop.
//! * **Hooks** — [`SimEngine::run_with_hook`] drives the run to completion,
//!   handing every event (plus a cluster snapshot) to an [`EngineHook`]
//!   whose returned actions are applied before the next event.
//!
//! Added instances come online after a provisioning delay (a dedicated
//! `Ready` event re-consults the scheduler the instant capacity appears);
//! retired instances drain gracefully and never receive new dispatches.  The
//! incremental views and idle index stay bit-identical to a from-scratch
//! recomputation across any interleaving of reconfiguration actions — this
//! invariant is enforced by `tests/proptest_reconfig.rs`.

use crate::calendar::{EventCalendar, TimedEvent, TimedKind};
use crate::cluster::{Cluster, ClusterSpec, InstanceLifecycle, ServiceSpec};
use crate::flex::{ActiveUnit, BatchingOptions, FlexConfig, FlexState, SharingMode, WorkUnit};
use crate::scheduler::{idle_order, Dispatch, InstanceView, Scheduler, SchedulingContext};
use crate::serverless::{ServerlessConfig, ServerlessState};
use crate::stats::{OutageRecord, QueryRecord, ServiceStats, SimReport, UnfinishedQuery};
use kairos_models::fault::{
    FailureDomain, FaultEvent, FaultProcess, PurchaseRejected, RejectionCause,
};
use kairos_models::latency::LatencyProfile;
use kairos_models::market::{billed_dollars, Market, MarketEvent};
use kairos_models::mlmodel::ModelKind;
use kairos_models::serverless::IdleHistogram;
use kairos_models::{Config, PoolSpec};
use kairos_workload::{ModelId, Query, TimeUs, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Options controlling one simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulationOptions {
    /// Seed of the service-time noise RNG (ignored when the service is
    /// deterministic, which is the paper's default).
    pub seed: u64,
}

/// A materialized fault-process occurrence: one boundary of a correlated
/// event, scheduled on the calendar exactly like a market event.  Outage and
/// shortage windows split into start/end boundaries at attach time so the
/// hot loop only ever applies instantaneous state flips.
#[derive(Debug, Clone)]
enum FaultOccurrence {
    /// A zone outage begins: every live instance placed in `domain` gets a
    /// notice and races the kill deadline; purchases there are rejected.
    OutageStart {
        domain: FailureDomain,
        end_us: TimeUs,
    },
    /// The domain comes back; purchases there succeed again.
    OutageEnd { domain: FailureDomain },
    /// Purchases in `domain` start returning [`PurchaseRejected`].
    ShortageStart { domain: FailureDomain },
    /// The shortage lifts.
    ShortageEnd { domain: FailureDomain },
    /// The lowest-indexed healthy live instance of `offering` degrades to
    /// `slowdown` of its nominal throughput.
    StragglerOnset { offering: usize, slowdown: f64 },
}

/// Event representation of the *naive* reference path, which keeps every
/// event (arrivals included) in one binary heap.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Arrival(Query),
    Completion { instance_index: usize },
}

/// Owned description of one processed engine event, handed to external
/// drivers (the serving loop, autoscalers, hooks).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A query arrived at the central queue.
    Arrival {
        /// The arriving query.
        query: Query,
    },
    /// A query finished service.
    Completion {
        /// The completion record (latency, instance, type).
        record: QueryRecord,
        /// Type name of the serving instance.
        type_name: Arc<str>,
    },
    /// A previously added instance finished provisioning and is now live.
    InstanceReady {
        /// Index of the instance that came online.
        instance_index: usize,
    },
    /// A market price step took effect (market-attached runs only).  Billing
    /// picks it up automatically; drivers typically replan.
    PriceStep {
        /// Index of the offering (pool type) whose price changed.
        offering: usize,
        /// The new hourly price.
        price_per_hour: f64,
    },
    /// The market announced reclamation of an offering's capacity: every
    /// live instance of that offering stopped accepting dispatches and races
    /// to drain until the deadline.
    PreemptionNotice {
        /// Index of the offering (pool type) being reclaimed.
        offering: usize,
        /// Number of instances the notice hit.
        affected: usize,
        /// Virtual time of the forced kill.
        deadline_us: TimeUs,
    },
    /// A preemption deadline fired: the instance was killed and whatever it
    /// still held (in-flight query plus local queue) was requeued to the
    /// central queue.
    InstancePreempted {
        /// Index of the killed instance.
        instance_index: usize,
        /// Queries returned to the central queue.
        requeued: usize,
    },
    /// A fused invocation finished on a flex-path instance (throughput
    /// sharing and/or dynamic batching enabled): every member query of the
    /// invocation — and of any other invocation whose finish volume was
    /// reached at the same instant — completed at once.
    Completions {
        /// Index of the instance whose invocation(s) finished.
        instance_index: usize,
        /// One record per completed member, in completion order.
        records: Vec<QueryRecord>,
        /// Type name of the serving instance.
        type_name: Arc<str>,
    },
    /// A dynamic batcher's timeout fired an undersized forming batch as one
    /// fused invocation.
    BatchFired {
        /// Index of the instance whose forming batch fired.
        instance_index: usize,
        /// Queries fused into the fired invocation.
        members: usize,
    },
    /// A zone outage began: every live instance placed in the failed domain
    /// got a preemption-style notice and races the kill deadline, and
    /// purchases in the domain are rejected until the zone restores.
    ZoneOutage {
        /// The failed domain.
        domain: FailureDomain,
        /// Number of instances the notice hit.
        affected: usize,
        /// Virtual time of the forced kills.
        deadline_us: TimeUs,
    },
    /// A failed domain came back online: purchases there succeed again.
    ZoneRestored {
        /// The restored domain.
        domain: FailureDomain,
    },
    /// A capacity-shortage window toggled in a domain: while active,
    /// purchases there return a typed
    /// [`PurchaseRejected`].
    CapacityShortage {
        /// The constrained domain.
        domain: FailureDomain,
        /// Whether the shortage just began (`true`) or lifted (`false`).
        active: bool,
    },
    /// A straggler onset degraded an instance's throughput mid-run.
    StragglerOnset {
        /// The victim instance — `None` when no healthy instance of the
        /// offering was live at onset (the fault fizzles).
        victim: Option<usize>,
        /// The applied throughput multiplier (fraction of nominal, (0, 1]).
        slowdown: f64,
    },
    /// A serverless instance idled past its keep-alive deadline and parked:
    /// its bill settled on the spot, and it costs nothing until the next
    /// dispatch wakes it with a cold start.
    InstanceParked {
        /// Index of the parked instance.
        instance_index: usize,
    },
}

/// A cluster mutation requested by an external driver or [`EngineHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAction {
    /// Add an instance of the given pool type; it comes online after the
    /// provisioning delay.
    AddInstance {
        /// Index of the instance type within the pool.
        type_index: usize,
        /// Time between the action and the instance accepting work.
        provisioning_delay_us: TimeUs,
    },
    /// Gracefully retire the instance at the given index.
    RetireInstance {
        /// Index of the instance within the cluster.
        instance_index: usize,
    },
}

/// Observer-and-actuator interface for [`SimEngine::run_with_hook`]: after
/// every event the hook sees what happened plus the current cluster state,
/// and returns cluster actions the engine applies before the next event.
pub trait EngineHook {
    /// Called after every processed event.  `now_us` is the engine clock.
    fn on_event(
        &mut self,
        now_us: TimeUs,
        event: &EngineEvent,
        cluster: &Cluster,
    ) -> Vec<ClusterAction>;
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: TimeUs,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed of model `m`'s service-time noise RNG stream, split
/// deterministically from the run seed.  Model 0 keeps the run seed
/// verbatim — every single-model artifact (and the primary lane of a
/// multi-model run) stays bit-identical to the pre-sharding engine — and
/// higher models get splitmix64-style mixed streams so per-lane shards and
/// the combined engine draw identical noise sequences per lane.
pub fn model_stream_seed(seed: u64, model: usize) -> u64 {
    if model == 0 {
        return seed;
    }
    // splitmix64 finalizer over the (seed, model) pair.
    let mut z = seed
        .wrapping_add((model as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nominal (noise-free) service time of a batch in rounded microseconds —
/// the unit of the incremental `free_at_us` accounting.  One quantization
/// for both engine paths: the table-lookup form delegates to the
/// profile form, which in turn shares [`ServiceSpec`]'s rounding.
#[inline]
fn nominal_us(service: &ServiceSpec, type_name: &str, batch: u32) -> TimeUs {
    nominal_us_profile(&service.profile(type_name), batch)
}

/// Nominal service time from a pre-resolved latency profile (no table
/// lookup).
#[inline]
fn nominal_us_profile(profile: &LatencyProfile, batch: u32) -> TimeUs {
    crate::cluster::quantize_service_ms(profile.latency_ms(batch))
}

/// Builds scheduler views by recomputing every instance's `free_at_us` from
/// its local queue — the original O(instances × queue-depth) path.  This is
/// the **single shared reference implementation**: [`run_trace_naive`]
/// rebuilds with it every round, [`SimEngine::recompute_views`] exposes it to
/// the property-test oracles, and the engine's incremental views are asserted
/// bit-identical to its output.
pub(crate) fn build_views_naive(
    cluster: &Cluster,
    services: &[&ServiceSpec],
    now: TimeUs,
) -> Vec<InstanceView> {
    cluster
        .instances()
        .iter()
        .map(|inst| {
            let service = services[inst.model.index()];
            let mut free_at = if inst.serving.is_some() {
                inst.busy_until_us.max(now)
            } else {
                now.max(inst.available_from_us)
            };
            // Account for the nominal service time of locally queued work.
            for q in &inst.local_queue {
                free_at += nominal_us(service, &inst.type_name, q.batch_size);
            }
            InstanceView {
                instance_index: inst.index,
                type_index: inst.type_index,
                type_name: inst.type_name.clone(),
                model: inst.model,
                is_base: inst.is_base,
                accepting: inst.accepts_dispatches(),
                free_at_us: free_at,
                backlog: inst.backlog(),
            }
        })
        .collect()
}

/// The discrete-event serving simulator.
///
/// Owns all mutable simulation state; every event advances the virtual clock,
/// applies the event, and consults the scheduler.  Construct one engine per
/// `(configuration, trace, scheduler)` run:
///
/// ```
/// use kairos_models::{calibration::paper_calibration, ec2, Config, PoolSpec, ModelKind};
/// use kairos_sim::{FcfsScheduler, ServiceSpec, SimEngine, SimulationOptions};
/// use kairos_workload::TraceSpec;
///
/// let pool = PoolSpec::new(ec2::paper_pool());
/// let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
/// let trace = TraceSpec::production(50.0, 1.0, 7).generate();
/// let mut scheduler = FcfsScheduler::new();
/// let engine = SimEngine::new(
///     &pool,
///     &Config::new(vec![1, 0, 1, 0]),
///     &service,
///     &trace,
///     &mut scheduler,
///     &SimulationOptions::default(),
/// );
/// let report = engine.run();
/// assert_eq!(report.offered, trace.len());
/// ```
pub struct SimEngine<'a> {
    /// Served models' specifications, indexed by [`ModelId`] (one entry for
    /// single-model runs).
    services: Vec<&'a ServiceSpec>,
    scheduler: &'a mut dyn Scheduler,
    cluster: Cluster,
    /// Per-model service-time noise RNG streams, indexed by [`ModelId`] and
    /// split deterministically from the seed (see [`model_stream_seed`]):
    /// model `m` draws only from stream `m`, so a per-model-lane shard
    /// replays exactly the draws the combined run spends on that lane.
    rngs: Vec<StdRng>,
    /// Per-`(model, type)` latency profiles, resolved once and flattened as
    /// `model × num_types + type`, so the hot path never hashes a type or
    /// model name.
    profiles: Vec<LatencyProfile>,
    /// Number of pool types (the stride of [`Self::profiles`]).
    num_types: usize,
    /// Trace arrivals sorted by `(arrival_us, trace order)`; the implicit
    /// event sequence number of `arrivals[i]` is `i`.
    arrivals: Vec<Query>,
    next_arrival: usize,
    /// Timed events: completions and provisioning `Ready` boundaries.
    calendar: EventCalendar,
    seq: u64,
    /// Central-queue storage.  The live queue is `central_queue[queue_head..]`:
    /// dispatching a *prefix* of the queue (the common FCFS-style pattern)
    /// advances the head in O(1) instead of shifting thousands of survivors,
    /// and the dead prefix is compacted away amortized-O(1).
    central_queue: Vec<Query>,
    queue_head: usize,
    records: Vec<QueryRecord>,
    /// Persistent scheduler views, updated at the moment an instance changes.
    /// Idle entries' `free_at_us` is clamped to the clock lazily, per
    /// scheduling round, via the idle index (see `prepare_round`).
    views: Vec<InstanceView>,
    /// Per-instance running sum of the (individually rounded) nominal
    /// service times of locally queued queries.
    local_nominal_us: Vec<TimeUs>,
    /// Total queries sitting in local queues (excluding those in service).
    local_queued: usize,
    /// Dispatchable backlog-free instances whose provisioning boundary has
    /// passed, sorted by instance index.
    idle_free: Vec<u32>,
    /// Dispatchable backlog-free instances still provisioning, sorted by
    /// `(available_from_us, instance index)`.
    idle_pending: Vec<u32>,
    /// Concatenation of the two lists handed to the scheduler each round.
    idle_ctx: Vec<u32>,
    /// Reusable dispatch-plan buffer (filled by `Scheduler::schedule_into`).
    scratch_plan: Vec<Dispatch>,
    /// Reusable removal-sweep index buffer.
    scratch_removed: Vec<usize>,
    /// Generation-stamped duplicate-dispatch marks: `marks[q] == round`
    /// means query `q` was already dispatched this round.  Grows with the
    /// deepest queue seen and is never cleared.
    dispatch_marks: Vec<u64>,
    round: u64,
    /// Completions within / beyond the QoS target so far (for early-exit
    /// capacity probes; see [`SimEngine::run_qos_probe`]).
    on_time_completions: usize,
    late_completions: usize,
    now: TimeUs,
    last_event: TimeUs,
    offered: usize,
    trace_duration_us: TimeUs,
    /// The attached market (None = the static constant-price model; billing
    /// then uses the pool's listed prices, same formula, bit-for-bit).
    market: Option<&'a dyn Market>,
    /// Market events materialized at attach time; calendar `Market` entries
    /// index into this table.
    market_events: Vec<MarketEvent>,
    /// Per-instance billing start (the moment the instance was requested).
    /// `u64::MAX` marks an instance whose bill has been settled.
    billed_start_us: Vec<TimeUs>,
    /// Dollars settled so far, as per-model partial sums indexed by
    /// [`ModelId`] (each instance's bill lands in its model's slot, in
    /// settlement order).  The report's total is the left fold of these
    /// partials — bit-identical to the old flat accumulator for
    /// single-model runs, and the representation that makes shard merges
    /// reproduce the combined total exactly (disjoint slots add exact
    /// zeros).
    billed_by_model: Vec<f64>,
    /// Accuracy of the variant currently serving each model, indexed by
    /// [`ModelId`] — seeded from the service specs' reference accuracy and
    /// overwritten by [`SimEngine::set_model_profiles`] on a variant switch.
    accuracy_by_model: Vec<f64>,
    /// Sum over completed queries of the serving accuracy at completion
    /// time, as per-model partial sums indexed by [`ModelId`] — the same
    /// disjoint-slot representation as [`Self::billed_by_model`], so shard
    /// merges reproduce the combined sums exactly.
    accuracy_sum_by_model: Vec<f64>,
    /// Events processed so far (arrivals, completions, readies, market
    /// steps, kills; cancelled completions are skipped, not counted).
    events_processed: u64,
    preemption_notices: usize,
    preempted_instances: usize,
    requeued_queries: usize,
    /// Whether a fault process is attached.  Gates every fault-path branch
    /// so the fault-free engine stays bit-identical to the pre-fault one
    /// (`tests/proptest_fault.rs` pins that contract).
    faults: bool,
    /// Materialized fault occurrences; calendar `Fault` entries index into
    /// this table.
    fault_events: Vec<FaultOccurrence>,
    /// Failure-domain placement of each pool type (empty unless faults are
    /// attached; then one entry per type).
    placements: Vec<FailureDomain>,
    /// Notice→kill drain window granted to outage victims.
    fault_notice_us: TimeUs,
    /// Domains currently inside an outage window (purchases rejected,
    /// membership wiped at onset).
    active_outages: Vec<FailureDomain>,
    /// Domains currently inside a capacity-shortage window.
    active_shortages: Vec<FailureDomain>,
    /// Per-instance outage attribution: `outage_victim[i]` is 1 + the index
    /// of the outage record whose notice doomed instance `i` (0 = none).
    /// Sized with the cluster only when faults are attached.
    outage_victim: Vec<u32>,
    /// Per-instance throughput multiplier (1.0 = healthy; a straggler's
    /// service stretches by `1 / slowdown`).  Sized with the cluster only
    /// when faults are attached.
    slowdown: Vec<f64>,
    /// One record per zone outage gone through, in onset order.
    outage_records: Vec<OutageRecord>,
    /// Purchases rejected by outage/shortage admission control.
    rejected_purchases: usize,
    /// Straggler onsets that found a live victim.
    straggler_onsets: usize,
    /// QoS target of the primary ([`ModelId::DEFAULT`]) model.
    qos_us: u64,
    /// Per-model QoS targets, indexed by [`ModelId`] — an array load on the
    /// completion path, never a string lookup.
    qos_by_model: Vec<u64>,
    /// Flex service-path configuration (throughput sharing / dynamic
    /// batching).  `None` keeps every instance on the legacy one-at-a-time
    /// path, bit-for-bit.
    flex: Option<FlexConfig>,
    /// Per-instance flex state; empty unless [`Self::flex`] is set.
    flex_states: Vec<FlexState>,
    /// Queries dispatched to flex instances but not yet admitted to service
    /// (forming batches plus admission queues) — the flex contribution to
    /// [`Self::queued_backlog`].
    flex_waiting: usize,
    /// Fused invocations fired by the dynamic batcher so far.
    batches_fired: u64,
    /// Member queries across all fired invocations.
    batched_queries: u64,
    /// Sum of member counts per fired invocation (mean fill numerator).
    batch_fill_sum: u64,
    /// Sum over fired members of their forming-buffer wait, in µs.
    batch_wait_us_sum: u64,
    /// Serverless-lane configuration (keep-alive policies + cold-start
    /// costs).  `None` keeps every instance on the legacy always-billed
    /// path, bit-for-bit (`tests/proptest_serverless.rs` pins that
    /// contract).
    serverless: Option<ServerlessConfig>,
    /// Per-instance serverless state; empty unless [`Self::serverless`] is
    /// set.
    serverless_states: Vec<ServerlessState>,
    /// Per-model observed idle-gap histograms feeding the hybrid keep-alive
    /// policy; empty unless [`Self::serverless`] is set.
    idle_histograms: Vec<IdleHistogram>,
    /// Dispatches that found their target parked and paid a cold start.
    cold_starts: u64,
    /// Total cold-start latency paid before service, in µs.
    cold_start_wait_us_sum: u64,
    /// Total unbilled parked time accrued so far, in µs (still-parked
    /// instances accrue their open interval at report time).
    parked_us_sum: u64,
}

impl<'a> SimEngine<'a> {
    /// Builds an engine for one simulation of `trace` against `config` on
    /// `pool` serving `service`, distributing queries with `scheduler`.
    pub fn new(
        pool: &PoolSpec,
        config: &Config,
        service: &'a ServiceSpec,
        trace: &Trace,
        scheduler: &'a mut dyn Scheduler,
        options: &SimulationOptions,
    ) -> Self {
        Self::build(
            pool,
            ClusterSpec::single(config.clone()),
            vec![service],
            trace,
            scheduler,
            options,
        )
    }

    /// Builds an engine for a **multi-model** simulation: `spec` binds each
    /// served model's sub-cluster over the shared pool, and `services[m]` is
    /// the specification (QoS target, ground-truth latency, noise) of model
    /// `m`.  QoS and service times resolve per query model; dispatches whose
    /// query model differs from the target instance's binding are rejected.
    ///
    /// # Panics
    /// Panics if a spec slice binds a model with no entry in `services`.
    pub fn new_multi(
        pool: &PoolSpec,
        spec: &ClusterSpec,
        services: &[&'a ServiceSpec],
        trace: &Trace,
        scheduler: &'a mut dyn Scheduler,
        options: &SimulationOptions,
    ) -> Self {
        assert!(
            spec.model_table_len() <= services.len(),
            "cluster spec binds model {} but only {} services are given",
            spec.model_table_len() - 1,
            services.len()
        );
        Self::build(
            pool,
            spec.clone(),
            services.to_vec(),
            trace,
            scheduler,
            options,
        )
    }

    fn build(
        pool: &PoolSpec,
        spec: ClusterSpec,
        services: Vec<&'a ServiceSpec>,
        trace: &Trace,
        scheduler: &'a mut dyn Scheduler,
        options: &SimulationOptions,
    ) -> Self {
        let cluster = Cluster::new_multi(pool.clone(), spec);
        scheduler.bind_types(cluster.type_names());
        let models: Vec<ModelKind> = services.iter().map(|s| s.model.kind).collect();
        scheduler.bind_models(&models);
        let num_types = cluster.type_names().len();
        let profiles: Vec<LatencyProfile> = services
            .iter()
            .flat_map(|service| {
                cluster
                    .type_names()
                    .iter()
                    .map(|name| service.profile(name))
            })
            .collect();
        let qos_by_model: Vec<u64> = services.iter().map(|s| s.qos_us()).collect();

        let mut arrivals = trace.queries.clone();
        // Traces are sorted by construction; a hand-assembled out-of-order
        // trace is restored to the event order the reference heap would use
        // ((arrival time, trace position), stable).
        if !arrivals
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us)
        {
            arrivals.sort_by_key(|q| q.arrival_us);
        }
        let mean_gap_us = if arrivals.len() > 1 {
            trace.duration_us() / arrivals.len() as u64
        } else {
            1_000
        };

        let views = build_views_naive(&cluster, &services, 0);
        let idle_free: Vec<u32> = views
            .iter()
            .filter(|v| v.accepting && v.backlog == 0)
            .map(|v| v.instance_index as u32)
            .collect();
        let local_nominal_us = vec![0; cluster.len()];
        let billed_start_us = vec![0; cluster.len()];
        let offered = arrivals.len();
        let rngs = (0..services.len())
            .map(|m| StdRng::seed_from_u64(model_stream_seed(options.seed, m)))
            .collect();
        let billed_by_model = vec![0.0; services.len()];
        let accuracy_by_model: Vec<f64> = services.iter().map(|s| s.model.accuracy).collect();
        let accuracy_sum_by_model = vec![0.0; services.len()];
        Self {
            services,
            scheduler,
            cluster,
            rngs,
            profiles,
            num_types,
            arrivals,
            next_arrival: 0,
            calendar: EventCalendar::with_granularity(mean_gap_us.max(1)),
            seq: offered as u64,
            central_queue: Vec::new(),
            queue_head: 0,
            // Every completion lands here; reserving the offered count once
            // avoids growth-doubling's transient 2x peak (and its fresh-page
            // copies) on multi-gigabyte replays.
            records: Vec::with_capacity(offered),
            views,
            local_nominal_us,
            local_queued: 0,
            idle_free,
            idle_pending: Vec::new(),
            idle_ctx: Vec::new(),
            scratch_plan: Vec::new(),
            scratch_removed: Vec::new(),
            dispatch_marks: Vec::new(),
            round: 0,
            on_time_completions: 0,
            late_completions: 0,
            now: 0,
            last_event: 0,
            offered,
            trace_duration_us: trace.duration_us(),
            market: None,
            market_events: Vec::new(),
            billed_start_us,
            billed_by_model,
            accuracy_by_model,
            accuracy_sum_by_model,
            events_processed: 0,
            preemption_notices: 0,
            preempted_instances: 0,
            requeued_queries: 0,
            faults: false,
            fault_events: Vec::new(),
            placements: Vec::new(),
            fault_notice_us: 0,
            active_outages: Vec::new(),
            active_shortages: Vec::new(),
            outage_victim: Vec::new(),
            slowdown: Vec::new(),
            outage_records: Vec::new(),
            rejected_purchases: 0,
            straggler_onsets: 0,
            qos_us: qos_by_model[0],
            qos_by_model,
            flex: None,
            flex_states: Vec::new(),
            flex_waiting: 0,
            batches_fired: 0,
            batched_queries: 0,
            batch_fill_sum: 0,
            batch_wait_us_sum: 0,
            serverless: None,
            serverless_states: Vec::new(),
            idle_histograms: Vec::new(),
            cold_starts: 0,
            cold_start_wait_us_sum: 0,
            parked_us_sum: 0,
        }
    }

    /// Attaches a fair throughput-sharing service model:
    /// [`SharingMode::Fair`] lets several invocations share each instance
    /// under the options' degradation curves, while [`SharingMode::None`]
    /// is a no-op that leaves the engine on the legacy dedicated-instance
    /// path, bit-for-bit (`tests/proptest_flex.rs` pins that contract).
    ///
    /// Must be called before the first step.
    ///
    /// # Panics
    /// Panics if the engine has already started, or if the options carry
    /// neither one uniform curve nor exactly one curve per pool type.
    pub fn with_sharing(mut self, mode: SharingMode) -> Self {
        let SharingMode::Fair(options) = mode else {
            return self;
        };
        self.assert_unstarted("sharing");
        assert!(
            self.serverless.is_none(),
            "throughput sharing does not compose with the serverless lane"
        );
        assert!(
            options.num_curves() == 1 || options.num_curves() == self.num_types,
            "need one degradation curve or one per pool type ({} given, {} types)",
            options.num_curves(),
            self.num_types
        );
        self.flex.get_or_insert_with(FlexConfig::default).sharing = Some(options);
        self.init_flex();
        self
    }

    /// Attaches a per-instance dynamic batcher: dispatched queries gather in
    /// a forming buffer and fire as one fused invocation when the fused
    /// batch size reaches `max_batch_size` or `timeout_us` after the first
    /// member arrived, whichever is first.  Composes with
    /// [`Self::with_sharing`]; alone, instances serve one fused invocation
    /// at a time.
    ///
    /// Must be called before the first step.
    ///
    /// # Panics
    /// Panics if the engine has already started.
    pub fn with_batching(mut self, options: BatchingOptions) -> Self {
        self.assert_unstarted("batching");
        assert!(
            self.serverless.is_none(),
            "dynamic batching does not compose with the serverless lane"
        );
        self.flex.get_or_insert_with(FlexConfig::default).batching = Some(options);
        self.init_flex();
        self
    }

    /// Attaches the serverless execution lane: every model lane whose entry
    /// in [`ServerlessConfig::policies`] is `Some` gets keep-alive-governed
    /// containers — an instance idle past its policy's deadline transitions
    /// to the zero-billing [`InstanceLifecycle::Parked`] state (its bill
    /// settles on the spot), stays dispatchable, and the next dispatch wakes
    /// it by paying the cold-start latency before service.  Lanes with
    /// `None` — and the whole engine when no lane has a policy — behave
    /// bit-identically to the legacy always-billed path
    /// (`tests/proptest_serverless.rs` pins that contract).
    ///
    /// Keep-alive timers ride the event calendar with the batcher's lazy
    /// deletion discipline: each pending expiry carries a generation stamp,
    /// a dispatch landing before the deadline bumps the stamp, and the stale
    /// entry is skipped (and counted) at pop time.  Hybrid policies size
    /// their deadline from the lane's observed idle-gap histogram,
    /// maintained here.
    ///
    /// Must be called before the first step; does not compose with
    /// [`Self::with_sharing`] / [`Self::with_batching`].
    ///
    /// # Panics
    /// Panics if the engine has already started, a flex service model is
    /// attached, `config.policies` is not one entry per served model, or the
    /// cold-start profile is neither uniform nor one entry per pool type.
    pub fn with_serverless(mut self, config: ServerlessConfig) -> Self {
        self.assert_unstarted("serverless");
        assert!(
            self.flex.is_none(),
            "the serverless lane does not compose with sharing/batching"
        );
        assert_eq!(
            config.policies.len(),
            self.services.len(),
            "need one keep-alive policy slot per served model"
        );
        assert!(
            config.cold_start.num_entries() == 1
                || config.cold_start.num_entries() == self.num_types,
            "need one cold-start cost or one per pool type ({} given, {} types)",
            config.cold_start.num_entries(),
            self.num_types
        );
        self.idle_histograms = config
            .policies
            .iter()
            .map(|p| match p {
                Some(policy) => policy.histogram(),
                None => IdleHistogram::new(1, 1),
            })
            .collect();
        self.serverless_states = vec![ServerlessState::default(); self.cluster.len()];
        self.serverless = Some(config);
        // Instances idle at construction start their first tracked idle
        // period (and keep-alive countdown) at t = 0.
        let idle: Vec<u32> = self.idle_free.clone();
        for i in idle {
            self.serverless_arm(i as usize);
        }
        self
    }

    fn assert_unstarted(&self, what: &str) {
        assert!(
            self.next_arrival == 0 && self.records.is_empty() && self.now == 0,
            "configure {what} before stepping the engine"
        );
    }

    /// Creates the per-instance flex states (idempotent across the two
    /// builder calls), seeding idle-index membership from the index itself.
    fn init_flex(&mut self) {
        if self.flex_states.len() == self.cluster.len() {
            return;
        }
        self.flex_states = (0..self.cluster.len())
            .map(|i| FlexState {
                in_idle: self.idle_free.binary_search(&(i as u32)).is_ok(),
                ..FlexState::default()
            })
            .collect();
    }

    /// Attaches a cloud market to the engine: prices become time-varying for
    /// billing, and every market event within the trace horizon (price
    /// steps, preemption notices) is materialized into the calendar queue,
    /// so the hot loop stays allocation-free.  Offering `i` of the market
    /// prices pool type `i` — build the engine over
    /// [`OfferingCatalog::effective_pool`](kairos_models::OfferingCatalog::effective_pool)
    /// so the coordinates line up.
    ///
    /// Must be called before the first step.
    ///
    /// # Panics
    /// Panics if the market's offering count does not match the pool, or if
    /// the engine has already started.
    pub fn with_market(self, market: &'a dyn Market) -> Self {
        let horizon = self.trace_duration_us;
        self.with_market_horizon(market, horizon)
    }

    /// [`Self::with_market`] with an explicit event horizon — for traces
    /// whose interesting market activity extends past the last arrival
    /// (e.g. a storm hitting while the backlog drains).
    pub fn with_market_horizon(mut self, market: &'a dyn Market, horizon_us: TimeUs) -> Self {
        assert_eq!(
            market.num_offerings(),
            self.num_types,
            "market offerings must match the pool's types"
        );
        assert!(
            self.next_arrival == 0 && self.records.is_empty() && self.now == 0,
            "attach the market before stepping the engine"
        );
        self.market_events = market.events(horizon_us);
        for (index, event) in self.market_events.iter().enumerate() {
            self.calendar.push(TimedEvent {
                time: event.at_us(),
                seq: self.seq,
                instance_index: index,
                kind: TimedKind::Market,
                gen: 0,
            });
            self.seq += 1;
        }
        self.market = Some(market);
        self
    }

    /// Attaches a correlated-fault process: zone outages, capacity
    /// shortages, and straggler onsets are materialized into the calendar
    /// queue (exactly like market events), and `placements[t]` names the
    /// failure domain hosting pool type `t` — pass
    /// [`OfferingCatalog::domains`](kairos_models::OfferingCatalog::domains)
    /// when the engine runs over an effective pool.  An empty `placements`
    /// slice puts every type in the single global domain (the domain-blind
    /// world); an empty process attaches nothing and perturbs nothing.
    ///
    /// Must be called before the first step.
    ///
    /// # Panics
    /// Panics if the engine has already started, or if `placements` is
    /// non-empty but does not name one domain per pool type.
    pub fn with_faults(mut self, process: &FaultProcess, placements: &[FailureDomain]) -> Self {
        self.assert_unstarted("faults");
        assert!(
            placements.is_empty() || placements.len() == self.num_types,
            "need one failure-domain placement per pool type ({} given, {} types)",
            placements.len(),
            self.num_types
        );
        self.faults = true;
        self.placements = if placements.is_empty() {
            vec![FailureDomain::global(); self.num_types]
        } else {
            placements.to_vec()
        };
        self.fault_notice_us = process.notice_us();
        self.outage_victim = vec![0; self.cluster.len()];
        self.slowdown = vec![1.0; self.cluster.len()];
        for event in process.events() {
            match event {
                FaultEvent::ZoneOutage {
                    domain,
                    start_us,
                    duration_us,
                } => {
                    let end_us = start_us.saturating_add(*duration_us);
                    self.push_fault(
                        *start_us,
                        FaultOccurrence::OutageStart {
                            domain: domain.clone(),
                            end_us,
                        },
                    );
                    self.push_fault(
                        end_us,
                        FaultOccurrence::OutageEnd {
                            domain: domain.clone(),
                        },
                    );
                }
                FaultEvent::CapacityShortage {
                    domain,
                    start_us,
                    end_us,
                } => {
                    self.push_fault(
                        *start_us,
                        FaultOccurrence::ShortageStart {
                            domain: domain.clone(),
                        },
                    );
                    self.push_fault(
                        *end_us,
                        FaultOccurrence::ShortageEnd {
                            domain: domain.clone(),
                        },
                    );
                }
                FaultEvent::Straggler {
                    at_us,
                    offering,
                    slowdown,
                } => {
                    self.push_fault(
                        *at_us,
                        FaultOccurrence::StragglerOnset {
                            offering: *offering,
                            slowdown: *slowdown,
                        },
                    );
                }
            }
        }
        self
    }

    /// Schedules one materialized fault occurrence on the calendar.
    fn push_fault(&mut self, at_us: TimeUs, occurrence: FaultOccurrence) {
        self.calendar.push(TimedEvent {
            time: at_us,
            seq: self.seq,
            instance_index: self.fault_events.len(),
            kind: TimedKind::Fault,
            gen: 0,
        });
        self.seq += 1;
        self.fault_events.push(occurrence);
    }

    /// Current virtual time (time of the last processed event).
    pub fn now(&self) -> TimeUs {
        self.now
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Queries waiting in the central queue, in arrival order.
    pub fn central_queue(&self) -> &[Query] {
        &self.central_queue[self.queue_head..]
    }

    /// Queries in the system that are not being served: the central queue
    /// plus every local instance queue.  O(1) — maintained incrementally for
    /// the serving loop's demand estimate.
    pub fn queued_backlog(&self) -> usize {
        self.central_queue.len() - self.queue_head + self.local_queued + self.flex_waiting
    }

    /// Completion records gathered so far.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// The scheduler views refreshed to the current clock for *every*
    /// instance (including retired ones the hot path leaves stale).
    /// Diagnostic/test API: O(instances × queue-depth).
    pub fn views(&mut self) -> &[InstanceView] {
        self.views = build_views_naive(&self.cluster, &self.services, self.now);
        &self.views
    }

    /// Recomputes the scheduler views from scratch (O(instances ×
    /// queue-depth)).  Reference implementation for tests; the hot path
    /// updates views incrementally instead.
    pub fn recompute_views(&self) -> Vec<InstanceView> {
        build_views_naive(&self.cluster, &self.services, self.now)
    }

    /// Exactly what the next scheduling round would see: the incrementally
    /// maintained views and idle index, prepared to the current clock
    /// *without* any full-cluster sweep.  Views of retired instances are not
    /// refreshed (their `free_at_us` may be stale; policies never read
    /// them).  Test API for the hot-path invariants.
    ///
    /// The hot path leaves free-list views carrying the time they went idle
    /// (policies only read them through `<= now` predicates and saturating
    /// subtraction, so the value is unobservable); this accessor clamps
    /// them to `now` so the oracle comparison against
    /// [`Self::recompute_views`] stays bit-for-bit.
    pub fn scheduler_views(&mut self) -> (&[InstanceView], &[u32]) {
        self.prepare_round();
        for &i in &self.idle_free {
            self.views[i as usize].free_at_us = self.now;
        }
        self.idle_ctx.clear();
        self.idle_ctx.extend_from_slice(&self.idle_free);
        self.idle_ctx.extend_from_slice(&self.idle_pending);
        (&self.views, &self.idle_ctx)
    }

    /// Processes the next event, consulting the scheduler afterwards.
    /// Returns `false` once the event heap is exhausted.
    pub fn step(&mut self) -> bool {
        self.step_event().is_some()
    }

    /// Processes the next event and returns an owned description of it, so an
    /// external driver can observe arrivals/completions and reconfigure the
    /// cluster between steps.  Returns `None` once all events are exhausted.
    pub fn step_event(&mut self) -> Option<EngineEvent> {
        // Arrivals carry sequence numbers 0..offered (their trace position),
        // timed events continue from there — so on a time tie the arrival
        // fires first, exactly as the reference heap orders (time, seq).
        // The inner loop exists only for cancelled completions (a query
        // whose instance was preemption-killed after its completion was
        // scheduled): those events are discarded without advancing the clock
        // and the next event is taken instead.
        let observed = loop {
            let take_arrival = match (
                self.next_arrival < self.arrivals.len(),
                self.calendar.peek(),
            ) {
                (false, None) => return None,
                (true, None) => true,
                (false, Some(_)) => false,
                (true, Some((timed_at, _))) => {
                    self.arrivals[self.next_arrival].arrival_us <= timed_at
                }
            };
            if take_arrival {
                let query = self.arrivals[self.next_arrival];
                self.next_arrival += 1;
                self.now = query.arrival_us;
                self.last_event = self.last_event.max(self.now);
                self.central_queue.push(query);
                break EngineEvent::Arrival { query };
            }
            let event = self.calendar.pop().expect("peeked above");
            if event.kind == TimedKind::Completion
                && self.cluster.instances()[event.instance_index].is_preempted()
            {
                // The serving query was requeued by a kill; its old
                // completion is void (the kill counted the cancellation).
                self.calendar.note_stale_pop();
                continue;
            }
            if matches!(
                event.kind,
                TimedKind::FlexCompletion | TimedKind::BatchTimeout
            ) && !self.flex_event_live(&event)
            {
                // Superseded by a reschedule (or a kill): lazy deletion —
                // the stale entry is skipped without advancing the clock.
                self.calendar.note_stale_pop();
                continue;
            }
            if event.kind == TimedKind::KeepAliveExpiry {
                let st = &self.serverless_states[event.instance_index];
                if !(st.park_pending && event.gen == st.park_gen) {
                    // A dispatch (or decommission) beat the deadline: the
                    // superseded timer dies lazily, same as a batch timeout.
                    self.calendar.note_stale_pop();
                    continue;
                }
            }
            self.now = event.time;
            // A park is pure bookkeeping on an idle instance: it must not
            // extend the billing/latency horizon the way served work does
            // (a keep-alive tail after the last completion is billed to the
            // parking instance itself, not to the whole cluster).
            if event.kind != TimedKind::KeepAliveExpiry {
                self.last_event = self.last_event.max(self.now);
            }
            match event.kind {
                TimedKind::Ready => {
                    // A provisioned instance comes online: no state change
                    // beyond the scheduler consultation that lets queries
                    // flow to it (flex instances additionally admit work
                    // that queued up while they were provisioning; a
                    // serverless instance starts its first tracked idle
                    // period).
                    if self.flex.is_some() {
                        self.flex_on_ready(event.instance_index);
                    }
                    if self.serverless.is_some() {
                        let inst = &self.cluster.instances()[event.instance_index];
                        if inst.accepts_dispatches() && inst.backlog() == 0 {
                            self.serverless_arm(event.instance_index);
                        }
                    }
                    break EngineEvent::InstanceReady {
                        instance_index: event.instance_index,
                    };
                }
                TimedKind::Completion => break self.complete(event.instance_index),
                TimedKind::FlexCompletion => break self.flex_complete(event.instance_index),
                TimedKind::BatchTimeout => break self.flex_timeout(event.instance_index),
                TimedKind::Market => break self.apply_market_event(event.instance_index),
                TimedKind::Fault => break self.apply_fault_event(event.instance_index),
                TimedKind::Kill => break self.kill_instance(event.instance_index),
                TimedKind::KeepAliveExpiry => break self.park_instance(event.instance_index),
            }
        };
        self.events_processed += 1;
        self.invoke_scheduler();
        Some(observed)
    }

    /// Applies a materialized market event (price step or preemption
    /// notice).  Notices flip every live instance of the offering to
    /// [`InstanceLifecycle::Preempting`] and schedule its kill deadline.
    fn apply_market_event(&mut self, event_index: usize) -> EngineEvent {
        match self.market_events[event_index] {
            MarketEvent::PriceStep {
                offering,
                price_per_hour,
                ..
            } => EngineEvent::PriceStep {
                offering,
                price_per_hour,
            },
            MarketEvent::PreemptionNotice {
                offering,
                notice_us,
                ..
            } => {
                let deadline_us = self.now + notice_us;
                let mut affected = 0usize;
                for i in 0..self.cluster.len() {
                    let inst = &self.cluster.instances()[i];
                    if inst.type_index != offering || inst.is_terminated() {
                        continue;
                    }
                    if inst.lifecycle == InstanceLifecycle::Preempting {
                        continue; // already racing an earlier deadline
                    }
                    // A flex instance's cluster-level backlog is trivially
                    // zero; its index membership lives in the flex state.
                    let indexed = if self.flex.is_some() {
                        self.flex_states[i].in_idle
                    } else {
                        inst.accepts_dispatches() && inst.backlog() == 0
                    };
                    if indexed {
                        self.remove_idle(i as u32);
                        if let Some(st) = self.flex_states.get_mut(i) {
                            st.in_idle = false;
                        }
                    }
                    if self.serverless.is_some() {
                        self.serverless_on_decommission(i);
                    }
                    self.cluster.instances_mut()[i].lifecycle = InstanceLifecycle::Preempting;
                    self.views[i].accepting = false;
                    self.calendar.push(TimedEvent {
                        time: deadline_us,
                        seq: self.seq,
                        instance_index: i,
                        kind: TimedKind::Kill,
                        gen: 0,
                    });
                    self.seq += 1;
                    affected += 1;
                }
                self.preemption_notices += 1;
                EngineEvent::PreemptionNotice {
                    offering,
                    affected,
                    deadline_us,
                }
            }
        }
    }

    /// Applies a materialized fault occurrence (see [`FaultOccurrence`]).
    fn apply_fault_event(&mut self, event_index: usize) -> EngineEvent {
        match self.fault_events[event_index].clone() {
            FaultOccurrence::OutageStart { domain, end_us } => self.begin_outage(domain, end_us),
            FaultOccurrence::OutageEnd { domain } => {
                if let Some(pos) = self.active_outages.iter().position(|d| *d == domain) {
                    self.active_outages.remove(pos);
                }
                EngineEvent::ZoneRestored { domain }
            }
            FaultOccurrence::ShortageStart { domain } => {
                self.active_shortages.push(domain.clone());
                EngineEvent::CapacityShortage {
                    domain,
                    active: true,
                }
            }
            FaultOccurrence::ShortageEnd { domain } => {
                if let Some(pos) = self.active_shortages.iter().position(|d| *d == domain) {
                    self.active_shortages.remove(pos);
                }
                EngineEvent::CapacityShortage {
                    domain,
                    active: false,
                }
            }
            FaultOccurrence::StragglerOnset { offering, slowdown } => {
                self.begin_straggler(offering, slowdown)
            }
        }
    }

    /// A zone outage begins: every live instance whose type is placed in
    /// the failed domain gets a notice→drain→kill, reusing the
    /// spot-preemption lifecycle ([`InstanceLifecycle::Preempting`] then a
    /// `Kill` deadline), and the domain rejects purchases until the outage
    /// ends.  The outage record books the kills and displaced queries the
    /// deadline later attributes to it.
    fn begin_outage(&mut self, domain: FailureDomain, end_us: TimeUs) -> EngineEvent {
        let deadline_us = self.now + self.fault_notice_us;
        let record_tag = self.outage_records.len() as u32 + 1;
        let mut affected = 0usize;
        for i in 0..self.cluster.len() {
            let inst = &self.cluster.instances()[i];
            if inst.is_terminated() || !domain.covers(&self.placements[inst.type_index]) {
                continue;
            }
            if inst.lifecycle == InstanceLifecycle::Preempting {
                continue; // already racing an earlier deadline
            }
            // Same de-indexing as a market preemption notice: a flex
            // instance's membership lives in its flex state.
            let indexed = if self.flex.is_some() {
                self.flex_states[i].in_idle
            } else {
                inst.accepts_dispatches() && inst.backlog() == 0
            };
            if indexed {
                self.remove_idle(i as u32);
                if let Some(st) = self.flex_states.get_mut(i) {
                    st.in_idle = false;
                }
            }
            if self.serverless.is_some() {
                self.serverless_on_decommission(i);
            }
            self.cluster.instances_mut()[i].lifecycle = InstanceLifecycle::Preempting;
            self.views[i].accepting = false;
            self.outage_victim[i] = record_tag;
            self.calendar.push(TimedEvent {
                time: deadline_us,
                seq: self.seq,
                instance_index: i,
                kind: TimedKind::Kill,
                gen: 0,
            });
            self.seq += 1;
            affected += 1;
        }
        self.outage_records.push(OutageRecord {
            domain: domain.label(),
            start_us: self.now,
            end_us,
            killed_instances: 0,
            lost_queries: 0,
        });
        self.active_outages.push(domain.clone());
        EngineEvent::ZoneOutage {
            domain,
            affected,
            deadline_us,
        }
    }

    /// A straggler onset: the lowest-indexed live instance of the offering
    /// that is still healthy degrades to `slowdown` of nominal throughput.
    /// On the flex path the processed-volume clock is credited at the old
    /// rate first and the frontmost completion re-derived at the new one
    /// (generation bump, lazy deletion — the in-flight invocation
    /// reschedules correctly); on the legacy path the in-flight service
    /// finishes at its already-scheduled time and every later one
    /// stretches by `1 / slowdown`.
    fn begin_straggler(&mut self, offering: usize, slowdown: f64) -> EngineEvent {
        let victim = (0..self.cluster.len()).find(|&i| {
            let inst = &self.cluster.instances()[i];
            inst.type_index == offering && !inst.is_terminated() && self.slowdown[i] == 1.0
        });
        if let Some(i) = victim {
            if self.flex.is_some() {
                // Credit the volume earned so far at the healthy rate
                // *before* degrading it.
                self.flex_advance(i);
                self.slowdown[i] = slowdown;
                self.flex_reschedule(i);
            } else {
                self.slowdown[i] = slowdown;
            }
            self.straggler_onsets += 1;
        }
        EngineEvent::StragglerOnset { victim, slowdown }
    }

    /// Books a kill against the outage whose notice doomed the instance,
    /// if any (market preemptions carry no attribution).
    fn attribute_outage_kill(&mut self, instance_index: usize, requeued: usize) {
        if !self.faults {
            return;
        }
        let tag = self.outage_victim[instance_index];
        if tag == 0 {
            return;
        }
        self.outage_victim[instance_index] = 0;
        let record = &mut self.outage_records[tag as usize - 1];
        record.killed_instances += 1;
        record.lost_queries += requeued;
    }

    /// Forcibly terminates an instance at its preemption deadline: the
    /// in-flight query (if any) and the local queue are requeued to the
    /// central queue exactly once, the bill is settled, and the instance
    /// becomes [`InstanceLifecycle::Preempted`].
    fn kill_instance(&mut self, instance_index: usize) -> EngineEvent {
        if self.flex.is_some() {
            let event = self.flex_kill(instance_index);
            if let EngineEvent::InstancePreempted { requeued, .. } = event {
                self.attribute_outage_kill(instance_index, requeued);
            }
            return event;
        }
        let mut requeued = 0usize;
        {
            let inst = &mut self.cluster.instances_mut()[instance_index];
            debug_assert_eq!(inst.lifecycle, InstanceLifecycle::Preempting);
            if let Some((query, _)) = inst.serving.take() {
                // The scheduled completion for this query is now void; it
                // will be skipped (and counted stale) at pop time.
                self.calendar.note_cancelled();
                self.central_queue.push(query);
                requeued += 1;
            }
            while let Some(query) = inst.local_queue.pop_front() {
                self.central_queue.push(query);
                requeued += 1;
                self.local_queued -= 1;
            }
            inst.lifecycle = InstanceLifecycle::Preempted;
            let free_at = self.now.max(inst.available_from_us);
            let view = &mut self.views[instance_index];
            view.backlog = 0;
            view.free_at_us = free_at;
            debug_assert!(!view.accepting, "notice already stopped dispatches");
        }
        self.local_nominal_us[instance_index] = 0;
        self.settle_bill(instance_index, self.now);
        self.preempted_instances += 1;
        self.requeued_queries += requeued;
        self.attribute_outage_kill(instance_index, requeued);
        EngineEvent::InstancePreempted {
            instance_index,
            requeued,
        }
    }

    /// Dollars billed for one instance of pool type `type_index` over
    /// `[from_us, to_us)`: the market's exact price integral, or the pool's
    /// listed price with the same constant-price formula when no market is
    /// attached (bit-for-bit what a [`kairos_models::ConstantMarket`] over
    /// the pool would charge).
    fn price_integral(&self, type_index: usize, from_us: TimeUs, to_us: TimeUs) -> f64 {
        match self.market {
            Some(market) => market.billed_cost(type_index, from_us, to_us),
            None => billed_dollars(self.cluster.pool().price(type_index), from_us, to_us),
        }
    }

    /// Settles an instance's bill through `end_us` (no-op if already
    /// settled).
    fn settle_bill(&mut self, instance_index: usize, end_us: TimeUs) {
        let start = self.billed_start_us[instance_index];
        if start == TimeUs::MAX {
            return;
        }
        let inst = &self.cluster.instances()[instance_index];
        let (type_index, model) = (inst.type_index, inst.model);
        self.billed_by_model[model.index()] += self.price_integral(type_index, start, end_us);
        self.billed_start_us[instance_index] = TimeUs::MAX;
    }

    /// Applies a completion event on `instance_index`.
    fn complete(&mut self, instance_index: usize) -> EngineEvent {
        let (query, start_us, type_index, type_name) = {
            let inst = &mut self.cluster.instances_mut()[instance_index];
            let (query, start_us) = inst
                .serving
                .take()
                .expect("completion event for idle instance");
            (query, start_us, inst.type_index, inst.type_name.clone())
        };
        let record = QueryRecord {
            id: query.id,
            model: query.model,
            batch_size: query.batch_size,
            arrival_us: query.arrival_us,
            start_us,
            completion_us: self.now,
            instance_index,
            type_index,
        };
        if record.within_qos(self.qos_by_model[query.model.index()]) {
            self.on_time_completions += 1;
        } else {
            self.late_completions += 1;
        }
        self.records.push(record);
        self.accuracy_sum_by_model[query.model.index()] +=
            self.accuracy_by_model[query.model.index()];
        let service_ms = (self.now - start_us) as f64 / 1000.0;
        self.scheduler
            .on_completion(type_index, query.model, query.batch_size, service_ms);
        // Start the next locally queued query, if any; a draining instance
        // that just emptied transitions to retired (and settles its bill).
        self.start_next(instance_index);
        if self.cluster.settle_drained(instance_index) {
            self.settle_bill(instance_index, self.now);
        }
        EngineEvent::Completion { record, type_name }
    }

    /// Adds an instance of the given pool type bound to
    /// [`ModelId::DEFAULT`] to the live cluster.  The instance is visible to
    /// the scheduler immediately but cannot start serving until
    /// `provisioning_delay_us` has elapsed; a `Ready` event re-consults the
    /// scheduler the moment it comes online.  Returns the new instance's
    /// index.
    pub fn add_instance(&mut self, type_index: usize, provisioning_delay_us: TimeUs) -> usize {
        self.add_instance_for(ModelId::DEFAULT, type_index, provisioning_delay_us)
    }

    /// [`Self::add_instance`] for a specific model binding: the new instance
    /// hosts a replica of `model` and only accepts that model's queries.
    ///
    /// # Panics
    /// Panics if `model` has no entry in the engine's service table.
    pub fn add_instance_for(
        &mut self,
        model: ModelId,
        type_index: usize,
        provisioning_delay_us: TimeUs,
    ) -> usize {
        assert!(
            model.index() < self.services.len(),
            "model {model} not served by this engine"
        );
        let ready_at = self.now + provisioning_delay_us;
        let instance_index = self.cluster.add_instance_for(model, type_index, ready_at);
        let inst = &self.cluster.instances()[instance_index];
        self.views.push(InstanceView {
            instance_index,
            type_index,
            type_name: inst.type_name.clone(),
            model,
            is_base: inst.is_base,
            accepting: true,
            free_at_us: ready_at.max(self.now),
            backlog: 0,
        });
        self.local_nominal_us.push(0);
        self.billed_start_us.push(self.now);
        if self.faults {
            self.outage_victim.push(0);
            self.slowdown.push(1.0);
        }
        if self.flex.is_some() {
            self.flex_states.push(FlexState {
                in_idle: true,
                ..FlexState::default()
            });
        }
        if self.serverless.is_some() {
            // The keep-alive countdown starts at the `Ready` boundary, once
            // the instance is actually idle-and-live.
            self.serverless_states.push(ServerlessState::default());
        }
        self.insert_idle_pending(instance_index as u32);
        self.calendar.push(TimedEvent {
            time: ready_at,
            seq: self.seq,
            instance_index,
            kind: TimedKind::Ready,
            gen: 0,
        });
        self.seq += 1;
        instance_index
    }

    /// [`Self::add_instance_for`] with fault-domain admission control: when
    /// the target type's placement is inside an active zone outage or
    /// capacity shortage, the purchase returns a typed [`PurchaseRejected`]
    /// instead of silently succeeding (and the report's
    /// `rejected_purchases` counter ticks).  Without an attached fault
    /// process this is exactly `Ok(add_instance_for(..))`.
    pub fn try_add_instance_for(
        &mut self,
        model: ModelId,
        type_index: usize,
        provisioning_delay_us: TimeUs,
    ) -> Result<usize, PurchaseRejected> {
        if self.faults {
            let placement = &self.placements[type_index];
            let cause = if self.active_outages.iter().any(|d| d.covers(placement)) {
                Some(RejectionCause::ZoneOutage)
            } else if self.active_shortages.iter().any(|d| d.covers(placement)) {
                Some(RejectionCause::CapacityShortage)
            } else {
                None
            };
            if let Some(cause) = cause {
                self.rejected_purchases += 1;
                return Err(PurchaseRejected {
                    type_index,
                    domain: placement.clone(),
                    at_us: self.now,
                    cause,
                });
            }
        }
        Ok(self.add_instance_for(model, type_index, provisioning_delay_us))
    }

    /// Gracefully retires an instance: it accepts no further dispatches and
    /// transitions to retired once its local queue drains (immediately if
    /// idle).  Queries already dispatched to it are still served.
    pub fn retire_instance(&mut self, instance_index: usize) {
        if self.flex.is_some() {
            self.flex_retire(instance_index);
            return;
        }
        let was_dispatchable_idle = {
            let inst = &self.cluster.instances()[instance_index];
            inst.accepts_dispatches() && inst.backlog() == 0
        };
        if was_dispatchable_idle {
            self.remove_idle(instance_index as u32);
        }
        if self.serverless.is_some() {
            self.serverless_on_decommission(instance_index);
        }
        if self.cluster.retire_instance(instance_index) {
            // Fully retired on the spot (idle or already terminated): the
            // bill settles now; `settle_bill` no-ops on settled instances.
            self.settle_bill(instance_index, self.now);
        }
        self.views[instance_index].accepting = false;
    }

    /// Swaps the latency profiles (and delivered accuracy) of one served
    /// model in place — the engine half of a **variant switch**: the serving
    /// loop lowers the chosen variant's latency table to one profile per
    /// pool type and installs it here without rebuilding the engine.
    ///
    /// Semantics across the switch boundary: queries already *in service*
    /// keep the service time they drew under the old variant (the artifact
    /// that started them finishes them); queries still waiting in local
    /// queues start under the new variant.  The incremental accounting is
    /// repaired accordingly — every affected instance's queued-nominal sum
    /// is recomputed under the new profiles and its scheduler view's
    /// `free_at_us` re-derived — so the hot path's running values stay
    /// exact.  Completions recorded after the switch accrue the new
    /// accuracy.  Installing the currently active profiles is a no-op
    /// bit-for-bit.
    ///
    /// With a flex service model attached (sharing/batching), in-flight and
    /// queued invocations keep their admitted service volumes; only future
    /// admissions see the new profiles.
    ///
    /// # Panics
    /// Panics if `model` is not served by this engine or `per_type` does not
    /// provide one profile per pool type (in the cluster's type order).
    pub fn set_model_profiles(
        &mut self,
        model: ModelId,
        per_type: &[LatencyProfile],
        accuracy: f64,
    ) {
        assert!(
            model.index() < self.services.len(),
            "model {model} not served by this engine"
        );
        assert_eq!(
            per_type.len(),
            self.num_types,
            "need one profile per pool type"
        );
        let base = model.index() * self.num_types;
        self.profiles[base..base + self.num_types].copy_from_slice(per_type);
        self.accuracy_by_model[model.index()] = accuracy;
        // Repair the incremental per-instance accounting: nominal estimates
        // of locally queued queries were charged under the old profiles.
        for i in 0..self.cluster.len() {
            let inst = &self.cluster.instances()[i];
            if inst.model != model || inst.is_terminated() {
                continue;
            }
            if inst.local_queue.is_empty() && inst.serving.is_none() {
                continue;
            }
            let profile = &self.profiles[base + inst.type_index];
            let nominal: TimeUs = inst
                .local_queue
                .iter()
                .map(|q| nominal_us_profile(profile, q.batch_size))
                .sum();
            self.local_nominal_us[i] = nominal;
            self.views[i].free_at_us = inst.busy_until_us + nominal;
        }
    }

    /// The delivered accuracy of the variant currently serving `model`.
    pub fn model_accuracy(&self, model: ModelId) -> f64 {
        self.accuracy_by_model[model.index()]
    }

    /// [`Self::retire_instance`] for the flex path.  The cluster-level
    /// serving slot and local queue are unused there, so [`Cluster`]'s
    /// idleness check would retire a loaded instance on the spot; the
    /// engine drains against the flex state instead.
    fn flex_retire(&mut self, instance_index: usize) {
        if self.cluster.instances()[instance_index].is_terminated() {
            return;
        }
        if self.flex_states[instance_index].in_idle {
            self.remove_idle(instance_index as u32);
            self.flex_states[instance_index].in_idle = false;
        }
        let lifecycle = self.cluster.instances()[instance_index].lifecycle;
        if lifecycle == InstanceLifecycle::Preempting {
            // The kill deadline wins, exactly as on the legacy path.
            self.views[instance_index].accepting = false;
            return;
        }
        if self.flex_states[instance_index].is_empty() {
            let retired = self.cluster.retire_instance(instance_index);
            debug_assert!(retired, "an empty flex instance retires immediately");
            self.settle_bill(instance_index, self.now);
        } else {
            self.cluster.instances_mut()[instance_index].lifecycle = InstanceLifecycle::Draining;
        }
        self.views[instance_index].accepting = false;
    }

    /// Applies a [`ClusterAction`] (driver convenience).
    pub fn apply(&mut self, action: ClusterAction) {
        match action {
            ClusterAction::AddInstance {
                type_index,
                provisioning_delay_us,
            } => {
                self.add_instance(type_index, provisioning_delay_us);
            }
            ClusterAction::RetireInstance { instance_index } => {
                self.retire_instance(instance_index);
            }
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        self.report()
    }

    /// Runs the simulation to completion with a reconfiguration hook in the
    /// loop: after every event the hook observes what happened and may return
    /// cluster actions, which are applied before the next event.
    pub fn run_with_hook(mut self, hook: &mut dyn EngineHook) -> SimReport {
        while let Some(event) = self.step_event() {
            for action in hook.on_event(self.now, &event, &self.cluster) {
                self.apply(action);
            }
        }
        self.report()
    }

    /// Runs the simulation only as far as needed to decide whether it meets
    /// the QoS target at `tolerance` (fraction of offered queries allowed to
    /// violate), and returns that verdict.  The result is **identical** to
    /// `self.run().meets_qos(tolerance)`; the replay just aborts as soon as
    /// the verdict is provable:
    ///
    /// * **fail** once the late completions alone exceed the violation
    ///   budget — the final count only grows (late completions stay late,
    ///   and stale unfinished queries only add to it);
    /// * **pass** once every query *not yet completed within QoS* could
    ///   violate and the total would still fit the budget — on-time
    ///   completions can never be revoked.
    ///
    /// This is what makes capacity probes cheap: an overloaded probe fails
    /// within the first QoS-window of violations instead of simulating the
    /// entire backlog drain, and a comfortably feasible probe passes without
    /// replaying its idle tail.
    pub fn run_qos_probe(mut self, tolerance: f64) -> bool {
        // The violation budget must be *exactly* the largest count the final
        // `meets_qos` float comparison accepts: deriving it via
        // `floor(tolerance × offered)` can disagree at representability
        // boundaries (e.g. 0.29 × 100 = 28.999…96 floors to 28 even though
        // 29/100 ≤ 0.29 holds in f64), which would flip a boundary-landing
        // probe against the full replay.  Start from the floor and align
        // with the comparison itself.
        let offered = self.offered as f64;
        let mut budget = (tolerance * offered).floor().clamp(0.0, offered) as usize;
        while budget < self.offered && ((budget + 1) as f64) / offered <= tolerance {
            budget += 1;
        }
        while budget > 0 && (budget as f64) / offered > tolerance {
            budget -= 1;
        }
        // A zero-violation run has fraction 0.0, which a (pathological)
        // negative tolerance still rejects — disable the early pass there.
        let can_pass_early = tolerance >= 0.0;
        loop {
            if self.late_completions > budget {
                return false;
            }
            if can_pass_early && self.offered - self.on_time_completions <= budget {
                return true;
            }
            if !self.step() {
                break;
            }
        }
        // Undecided at exhaustion (only stale-unfinished accounting left).
        self.report().meets_qos(tolerance)
    }

    /// Finalizes the run: anything still queued (centrally or locally) is
    /// reported as unfinished, and instances still renting are billed
    /// through the horizon.
    pub fn report(mut self) -> SimReport {
        let unfinished_of = |q: &Query| UnfinishedQuery {
            id: q.id,
            model: q.model,
            batch_size: q.batch_size,
            arrival_us: q.arrival_us,
        };
        let mut unfinished: Vec<UnfinishedQuery> = self.central_queue[self.queue_head..]
            .iter()
            .map(unfinished_of)
            .collect();
        // Arrivals the probe never reached count as unfinished too (only
        // possible when a run is abandoned early, e.g. by `run_qos_probe`).
        unfinished.extend(self.arrivals[self.next_arrival..].iter().map(unfinished_of));
        for inst in self.cluster.instances() {
            unfinished.extend(inst.local_queue.iter().map(unfinished_of));
            if let Some((q, _)) = &inst.serving {
                unfinished.push(unfinished_of(q));
            }
        }
        // Flex-path work lives outside the cluster's serving slots: forming
        // batches, queued invocations, and in-flight invocations all count
        // as unfinished at the horizon.
        for st in &self.flex_states {
            unfinished.extend(st.forming.iter().map(|(q, _)| unfinished_of(q)));
            for unit in &st.queued {
                unfinished.push(unfinished_of(&unit.lead));
                unfinished.extend(unit.rest.iter().map(unfinished_of));
            }
            for active in &st.active {
                unfinished.push(unfinished_of(&active.unit.lead));
                unfinished.extend(active.unit.rest.iter().map(unfinished_of));
            }
        }

        let horizon_us = self.last_event.max(self.trace_duration_us);
        // Instances still parked at the horizon close their unbilled
        // interval here (their bill settled at park time, so the settlement
        // loop below no-ops on them).
        for st in &mut self.serverless_states {
            if st.parked {
                st.parked = false;
                self.parked_us_sum += horizon_us.saturating_sub(st.parked_since_us);
            }
        }
        // Instances still renting at the horizon settle their bill here, in
        // index order (so a reconfiguration-free constant-price run sums in
        // exactly the order the naive reference does).
        for index in 0..self.cluster.len() {
            self.settle_bill(index, horizon_us);
        }
        // Multi-model reports are finalized in the canonical total order
        // (completion key for records, arrival key for unfinished) so that
        // a [`SimReport::merge`] of per-model-lane shards reproduces the
        // combined run's sequences bit-for-bit: completions are pushed in
        // clock order, so only same-microsecond ties across lanes are
        // permuted, and every aggregate is permutation-invariant.  The
        // single-model paths keep their historical processing order.
        let mut records = self.records;
        if self.services.len() > 1 {
            records.sort_unstable_by_key(SimReport::record_key);
            unfinished.sort_unstable_by_key(SimReport::unfinished_key);
        }
        // The billed total is the left fold of the per-model partials —
        // `0.0 + p0` for single-model runs, i.e. the old flat accumulator
        // bit-for-bit.
        let billed_dollars = self.billed_by_model.iter().fold(0.0, |acc, &b| acc + b);
        SimReport {
            scheduler: self.scheduler.name().to_string(),
            records,
            unfinished,
            offered: self.offered,
            horizon_us,
            qos_us: self.qos_us,
            qos_by_model: self.qos_by_model,
            billed_dollars,
            billed_by_model: self.billed_by_model,
            accuracy_sum_by_model: self.accuracy_sum_by_model,
            events_processed: self.events_processed,
            preemption_notices: self.preemption_notices,
            preempted_instances: self.preempted_instances,
            requeued_queries: self.requeued_queries,
            rejected_purchases: self.rejected_purchases,
            straggler_onsets: self.straggler_onsets,
            outages: self.outage_records,
            service: ServiceStats {
                calendar_scheduled: self.calendar.scheduled(),
                calendar_cancelled: self.calendar.cancelled(),
                calendar_stale_popped: self.calendar.stale_popped(),
                batches_fired: self.batches_fired,
                batched_queries: self.batched_queries,
                batch_fill_sum: self.batch_fill_sum,
                batch_wait_us_sum: self.batch_wait_us_sum,
                cold_starts: self.cold_starts,
                cold_start_wait_us_sum: self.cold_start_wait_us_sum,
                parked_us_sum: self.parked_us_sum,
            },
        }
    }

    /// Starts the next locally queued query on an idle instance, or marks the
    /// instance idle (and indexes it) when nothing is waiting.  Service
    /// cannot begin before the instance's provisioning boundary.
    fn start_next(&mut self, instance_index: usize) {
        let inst = &mut self.cluster.instances_mut()[instance_index];
        debug_assert!(inst.serving.is_none(), "instance already serving a query");
        if let Some(query) = inst.local_queue.pop_front() {
            // The query leaves the local queue: retire its nominal estimate
            // from the incremental view and charge the actual service time.
            // Model-mismatched dispatches were rejected, so the instance's
            // binding is the query's model.
            let profile = &self.profiles[inst.model.index() * self.num_types + inst.type_index];
            self.local_queued -= 1;
            self.local_nominal_us[instance_index] -= nominal_us_profile(profile, query.batch_size);
            let service_us = self.services[inst.model.index()].service_time_us_from_profile(
                profile,
                query.batch_size,
                &mut self.rngs[inst.model.index()],
            );
            // A straggler serves everything slower: the drawn service time
            // stretches by the reciprocal of the degraded throughput
            // (fault-free runs never branch here).
            let service_us = if self.faults && self.slowdown[instance_index] != 1.0 {
                (((service_us as f64) / self.slowdown[instance_index]).ceil() as TimeUs).max(1)
            } else {
                service_us
            };
            let start_us = self.now.max(inst.available_from_us);
            inst.serving = Some((query, start_us));
            inst.busy_until_us = start_us + service_us;
            let view = &mut self.views[instance_index];
            view.free_at_us = inst.busy_until_us + self.local_nominal_us[instance_index];
            view.backlog = inst.local_queue.len() + 1;
            self.calendar.push(TimedEvent {
                time: inst.busy_until_us,
                seq: self.seq,
                instance_index,
                kind: TimedKind::Completion,
                gen: 0,
            });
            self.seq += 1;
        } else {
            // Instance goes idle (reachable from the completion path only, so
            // its provisioning boundary has necessarily passed).
            debug_assert!(inst.available_from_us <= self.now);
            let accepting = inst.accepts_dispatches();
            let view = &mut self.views[instance_index];
            view.backlog = 0;
            view.free_at_us = self.now;
            if accepting {
                let pos = self
                    .idle_free
                    .binary_search(&(instance_index as u32))
                    .unwrap_err();
                self.idle_free.insert(pos, instance_index as u32);
                if self.serverless.is_some() {
                    self.serverless_arm(instance_index);
                }
            }
        }
    }

    /// Removes an instance from whichever idle list holds it.
    fn remove_idle(&mut self, instance_index: u32) {
        if let Ok(pos) = self.idle_free.binary_search(&instance_index) {
            self.idle_free.remove(pos);
        } else if let Some(pos) = self.idle_pending.iter().position(|&i| i == instance_index) {
            self.idle_pending.remove(pos);
        } else {
            debug_assert!(false, "idle instance {instance_index} not indexed");
        }
    }

    /// Inserts an instance into the pending idle list, keeping it sorted by
    /// `(available_from_us, instance index)`.
    fn insert_idle_pending(&mut self, instance_index: u32) {
        let key = |i: u32| {
            let inst = &self.cluster.instances()[i as usize];
            (inst.available_from_us, i)
        };
        let k = key(instance_index);
        let pos = self
            .idle_pending
            .binary_search_by(|&i| key(i).cmp(&k))
            .unwrap_err();
        self.idle_pending.insert(pos, instance_index);
    }

    /// Brings the idle index up to the current clock: pending instances
    /// whose provisioning boundary has passed migrate to the free list.
    /// O(migrations) in the common all-provisioned case.  Free-list views
    /// keep the `free_at_us` of the moment they went idle — always `<=
    /// now`, so `is_idle`/`idle_now`/`remaining_us` read them correctly
    /// without an O(idle) clamp sweep per round (the clamp that policies
    /// could observe lives in [`SimEngine::scheduler_views`]).
    fn prepare_round(&mut self) {
        while let Some(&head) = self.idle_pending.first() {
            if self.cluster.instances()[head as usize].available_from_us > self.now {
                break;
            }
            self.idle_pending.remove(0);
            let pos = self.idle_free.binary_search(&head).unwrap_err();
            self.idle_free.insert(pos, head);
        }
    }

    /// The idle slice handed to the scheduler: the free list itself when
    /// nothing is provisioning (no copy), otherwise the concatenation
    /// `free ++ pending` staged in `idle_ctx`.
    fn stage_idle_ctx(&mut self) -> bool {
        if self.idle_pending.is_empty() {
            return false;
        }
        self.idle_ctx.clear();
        self.idle_ctx.extend_from_slice(&self.idle_free);
        self.idle_ctx.extend_from_slice(&self.idle_pending);
        true
    }

    /// Consults the scheduler and applies its dispatch decisions.  On the
    /// flex path the round is re-run while it keeps making progress:
    /// batching/sharing instances stay dispatchable across several
    /// dispatches, but policies like FCFS hand out at most one query per
    /// instance per round.  (The legacy path keeps its single round — one
    /// dispatch fills the instance — so its event sequence is untouched.)
    fn invoke_scheduler(&mut self) {
        loop {
            let dispatched = self.scheduler_round();
            if self.flex.is_none() || dispatched == 0 || self.central_queue.len() == self.queue_head
            {
                return;
            }
        }
    }

    /// One scheduling round: consults the policy once and applies its plan.
    /// Returns the number of dispatches applied.
    fn scheduler_round(&mut self) -> usize {
        let queue_len = self.central_queue.len() - self.queue_head;
        if queue_len == 0 {
            return 0;
        }
        self.prepare_round();
        let staged = self.stage_idle_ctx();
        let mut plan = std::mem::take(&mut self.scratch_plan);
        plan.clear();
        {
            let idle: &[u32] = if staged {
                &self.idle_ctx
            } else {
                &self.idle_free
            };
            let ctx = SchedulingContext {
                now_us: self.now,
                queued: &self.central_queue[self.queue_head..],
                instances: &self.views,
                idle,
                qos_us: self.qos_us,
                qos_by_model: &self.qos_by_model,
            };
            self.scheduler.schedule_into(&ctx, &mut plan);
        }

        // Validate: indices in range, each query dispatched at most once, no
        // dispatches to draining/retired instances, and no model-mismatched
        // assignments (an instance only serves the model it hosts).
        // Duplicate tracking uses generation stamps so no per-round buffer
        // clearing or allocation is needed.
        self.round += 1;
        let round = self.round;
        if self.dispatch_marks.len() < queue_len {
            self.dispatch_marks.resize(queue_len, 0);
        }
        let cluster = &self.cluster;
        let queued = &self.central_queue[self.queue_head..];
        let marks = &mut self.dispatch_marks;
        plan.retain(|d| {
            let valid = d.query_index < queue_len
                && d.instance_index < cluster.len()
                && cluster.instances()[d.instance_index].accepts_dispatches()
                && cluster.instances()[d.instance_index].model == queued[d.query_index].model
                && marks[d.query_index] != round;
            if valid {
                marks[d.query_index] = round;
            }
            valid
        });
        if plan.is_empty() {
            self.scratch_plan = plan;
            return 0;
        }

        // Dispatch in the order returned by the policy.
        for d in &plan {
            let query = self.central_queue[self.queue_head + d.query_index];
            let i = d.instance_index;
            if self.flex.is_some() {
                self.flex_dispatch(i, query);
                continue;
            }
            let (needs_start, was_idle, type_index) = {
                let inst = &mut self.cluster.instances_mut()[i];
                let was_idle = inst.backlog() == 0;
                inst.local_queue.push_back(query);
                (inst.serving.is_none(), was_idle, inst.type_index)
            };
            if was_idle {
                self.remove_idle(i as u32);
                if self.serverless.is_some() {
                    // Ends the tracked idle period: records the observed
                    // gap, disarms the keep-alive timer, and — if the
                    // instance parked — wakes it with a cold start (the
                    // pushed-back query then starts after the cold-start
                    // boundary via `start_next`'s provisioning clamp).
                    self.serverless_on_dispatch(i);
                }
            }
            self.local_queued += 1;
            self.local_nominal_us[i] += nominal_us_profile(
                &self.profiles[query.model.index() * self.num_types + type_index],
                query.batch_size,
            );
            if needs_start {
                self.start_next(i);
            } else {
                let inst = &self.cluster.instances()[i];
                let view = &mut self.views[i];
                view.free_at_us = inst.busy_until_us + self.local_nominal_us[i];
                view.backlog = inst.backlog();
            }
        }

        // Remove dispatched queries.  A dispatched *prefix* — the common
        // FCFS-style pattern of taking the oldest queries — just advances the
        // queue head in O(1); scattered survivors behind it are closed up
        // with one gap-closing sweep where each element moves at most once.
        // Relative order of survivors is preserved.
        let mut removed = std::mem::take(&mut self.scratch_removed);
        removed.clear();
        removed.extend(plan.iter().map(|d| d.query_index));
        removed.sort_unstable();
        let mut prefix = 0usize;
        while prefix < removed.len() && removed[prefix] == prefix {
            prefix += 1;
        }
        self.queue_head += prefix;
        if prefix < removed.len() {
            let head = self.queue_head;
            let queue = &mut self.central_queue;
            let end = queue.len();
            // Absolute position of the first removed non-prefix entry: the
            // sweep compacts everything behind it.
            let mut write = head + removed[prefix] - prefix;
            for (i, &idx) in removed[prefix..].iter().enumerate() {
                let abs = head + idx - prefix;
                let next = removed[prefix..]
                    .get(i + 1)
                    .map(|&n| head + n - prefix)
                    .unwrap_or(end);
                queue.copy_within(abs + 1..next, write);
                write += next - abs - 1;
            }
            queue.truncate(write);
        }
        // Compact the dead prefix away once it dominates the storage, so the
        // buffer does not grow with the whole trace.
        if self.queue_head > 1024 && self.queue_head * 2 >= self.central_queue.len() {
            self.central_queue.drain(..self.queue_head);
            self.queue_head = 0;
        }
        self.scratch_removed = removed;
        let dispatched = plan.len();
        self.scratch_plan = plan;
        dispatched
    }

    // ---- Flex service path: fair sharing + dynamic batching ------------
    //
    // The flex path replaces the serving slot / local FIFO of an instance
    // with three stages: a *forming* batch (batching only), an *admission
    // queue* of fired invocations, and the *active* set progressing under
    // the sharing discipline.  All service work is tracked in normalized
    // processed-volume units (see `crate::flex`); every mutation below
    // touches only the affected instance, and superseded calendar entries
    // die lazily via generation stamps.

    /// Accepts a dispatched query on a flex instance: into the forming
    /// batch when batching is on, otherwise straight toward admission.
    fn flex_dispatch(&mut self, i: usize, query: Query) {
        self.flex_waiting += 1;
        let batching = self.flex.as_ref().expect("flex dispatch").batching;
        match batching {
            Some(b) => {
                let st = &mut self.flex_states[i];
                st.forming.push_back((query, self.now));
                st.forming_fused += query.batch_size;
                if st.forming_fused >= b.max_batch_size {
                    self.flex_fire_batch(i);
                } else if !st.batch_pending {
                    st.batch_pending = true;
                    st.batch_gen += 1;
                    let gen = st.batch_gen;
                    self.calendar.push(TimedEvent {
                        time: self.now + b.timeout_us,
                        seq: self.seq,
                        instance_index: i,
                        kind: TimedKind::BatchTimeout,
                        gen,
                    });
                    self.seq += 1;
                }
            }
            None => self.flex_enqueue(i, WorkUnit::single(query)),
        }
        self.flex_sync_view(i);
    }

    /// Fires the forming batch as one fused invocation (size cap reached or
    /// timeout expired).  Returns the member count.
    fn flex_fire_batch(&mut self, i: usize) -> usize {
        {
            let st = &mut self.flex_states[i];
            if st.batch_pending {
                // Superseded by the size trigger: the scheduled timeout
                // dies lazily at pop time.
                st.batch_pending = false;
                st.batch_gen += 1;
                self.calendar.note_cancelled();
            }
        }
        let now = self.now;
        let st = &mut self.flex_states[i];
        let (lead, lead_entered) = st.forming.pop_front().expect("fired an empty batch");
        let mut wait_us = now - lead_entered;
        let mut rest = Vec::with_capacity(st.forming.len());
        while let Some((q, entered)) = st.forming.pop_front() {
            wait_us += now - entered;
            rest.push(q);
        }
        let unit = WorkUnit {
            lead,
            rest,
            fused: st.forming_fused,
        };
        st.forming_fused = 0;
        let members = unit.members();
        self.batches_fired += 1;
        self.batched_queries += members as u64;
        self.batch_fill_sum += members as u64;
        self.batch_wait_us_sum += wait_us;
        self.flex_enqueue(i, unit);
        members
    }

    /// Queues a fired invocation for admission and admits while capacity
    /// allows.
    fn flex_enqueue(&mut self, i: usize, unit: WorkUnit) {
        {
            let st = &mut self.flex_states[i];
            st.queued_members += unit.members();
            st.queued.push_back(unit);
        }
        if self.flex_try_admit(i) {
            self.flex_reschedule(i);
        }
    }

    /// Admits queued invocations while the concurrency cap allows, drawing
    /// each one's service time at its fused batch size.  Returns whether
    /// the active set changed (the caller then re-derives the frontmost
    /// completion).
    fn flex_try_admit(&mut self, i: usize) -> bool {
        let (type_index, model, available_from_us) = {
            let inst = &self.cluster.instances()[i];
            (inst.type_index, inst.model, inst.available_from_us)
        };
        if self.now < available_from_us {
            return false; // still provisioning; `Ready` re-runs admission
        }
        let cap = self
            .flex
            .as_ref()
            .expect("flex admission")
            .concurrency_cap();
        let mut changed = false;
        while !self.flex_states[i].queued.is_empty()
            && (cap == 0 || (self.flex_states[i].active.len() as u32) < cap)
        {
            if !changed {
                // Advance the volume at the pre-admission rate exactly once
                // (subsequent same-instant admissions see dt = 0).
                self.flex_advance(i);
                changed = true;
            }
            let unit = {
                let st = &mut self.flex_states[i];
                let unit = st.queued.pop_front().expect("checked non-empty");
                st.queued_members -= unit.members();
                unit
            };
            let profile = &self.profiles[model.index() * self.num_types + type_index];
            let work_us = self.services[model.index()].service_time_us_from_profile(
                profile,
                unit.fused,
                &mut self.rngs[model.index()],
            );
            self.flex_waiting -= unit.members();
            let st = &mut self.flex_states[i];
            st.admit_counter += 1;
            st.insert_active(ActiveUnit {
                finish_volume: st.volume + work_us as f64,
                admit_seq: st.admit_counter,
                start_us: self.now,
                unit,
            });
        }
        changed
    }

    /// Advances the instance's processed volume to the current clock at the
    /// prevailing per-sharer rate.  Must run *before* the sharer count
    /// changes.
    fn flex_advance(&mut self, i: usize) {
        let type_index = self.cluster.instances()[i].type_index;
        let st = &mut self.flex_states[i];
        if st.active.is_empty() {
            st.last_update_us = self.now;
            return;
        }
        let dt = self.now - st.last_update_us;
        if dt > 0 {
            let mut rate = self
                .flex
                .as_ref()
                .expect("flex advance")
                .rate(type_index, st.active.len() as u32);
            if self.faults {
                rate *= self.slowdown[i];
            }
            st.volume += dt as f64 * rate;
            st.last_update_us = self.now;
        }
    }

    /// Re-derives the frontmost completion after the active set (and hence
    /// the sharing rate) changed: the superseded calendar entry is
    /// invalidated in place (generation bump, lazy deletion) and the new
    /// boundary scheduled.  O(1) given the sorted active set — the
    /// incremental heart of the sharing path: an arrival or completion
    /// re-derives exactly one instance's frontmost event, never rescanning
    /// the cluster or the calendar.
    fn flex_reschedule(&mut self, i: usize) {
        {
            let st = &mut self.flex_states[i];
            if st.completion_pending {
                st.completion_pending = false;
                st.completion_gen += 1;
                self.calendar.note_cancelled();
            }
        }
        let type_index = self.cluster.instances()[i].type_index;
        let st = &mut self.flex_states[i];
        let Some(front) = st.active.first() else {
            return;
        };
        let mut rate = self
            .flex
            .as_ref()
            .expect("flex reschedule")
            .rate(type_index, st.active.len() as u32);
        if self.faults {
            rate *= self.slowdown[i];
        }
        let remaining = (front.finish_volume - st.volume).max(0.0);
        let dt = ((remaining / rate).ceil() as TimeUs).max(1);
        st.completion_gen += 1;
        st.completion_pending = true;
        let gen = st.completion_gen;
        self.calendar.push(TimedEvent {
            time: self.now + dt,
            seq: self.seq,
            instance_index: i,
            kind: TimedKind::FlexCompletion,
            gen,
        });
        self.seq += 1;
    }

    /// Whether a generation-stamped calendar entry is still the live one
    /// for its instance.
    fn flex_event_live(&self, event: &TimedEvent) -> bool {
        let st = &self.flex_states[event.instance_index];
        match event.kind {
            TimedKind::FlexCompletion => st.completion_pending && event.gen == st.completion_gen,
            TimedKind::BatchTimeout => st.batch_pending && event.gen == st.batch_gen,
            _ => true,
        }
    }

    /// Applies a live `FlexCompletion`: advances the volume, pops every
    /// invocation whose finish volume is reached, records the members,
    /// refills from the admission queue, and re-derives the next frontmost
    /// completion.
    fn flex_complete(&mut self, i: usize) -> EngineEvent {
        {
            let st = &mut self.flex_states[i];
            st.completion_pending = false;
            st.completion_gen += 1;
        }
        self.flex_advance(i);
        let (type_index, type_name) = {
            let inst = &self.cluster.instances()[i];
            (inst.type_index, inst.type_name.clone())
        };
        {
            // Integer rounding of the event time can land a hair before the
            // exact crossing; the event is authoritative for the frontmost
            // invocation, so clamp the volume up to it.
            let st = &mut self.flex_states[i];
            let front = st
                .active
                .first()
                .expect("live completion on an empty instance")
                .finish_volume;
            if st.volume < front {
                st.volume = front;
            }
        }
        let mut records = Vec::new();
        while let Some(front) = self.flex_states[i].active.first() {
            if front.finish_volume > self.flex_states[i].volume {
                break;
            }
            let done = self.flex_states[i].active.remove(0);
            self.flex_states[i].active_members -= done.unit.members();
            let service_ms = (self.now - done.start_us) as f64 / 1000.0;
            for query in std::iter::once(&done.unit.lead).chain(done.unit.rest.iter()) {
                let record = QueryRecord {
                    id: query.id,
                    model: query.model,
                    batch_size: query.batch_size,
                    arrival_us: query.arrival_us,
                    start_us: done.start_us,
                    completion_us: self.now,
                    instance_index: i,
                    type_index,
                };
                if record.within_qos(self.qos_by_model[query.model.index()]) {
                    self.on_time_completions += 1;
                } else {
                    self.late_completions += 1;
                }
                self.records.push(record);
                self.accuracy_sum_by_model[query.model.index()] +=
                    self.accuracy_by_model[query.model.index()];
                records.push(record);
                self.scheduler
                    .on_completion(type_index, query.model, query.batch_size, service_ms);
            }
        }
        self.flex_try_admit(i);
        self.flex_reschedule(i);
        self.flex_sync_view(i);
        if self.flex_states[i].is_empty() && self.cluster.settle_drained(i) {
            self.settle_bill(i, self.now);
        }
        EngineEvent::Completions {
            instance_index: i,
            records,
            type_name,
        }
    }

    /// A live batch timeout fired: the undersized forming batch goes out as
    /// one fused invocation.
    fn flex_timeout(&mut self, i: usize) -> EngineEvent {
        {
            let st = &mut self.flex_states[i];
            st.batch_pending = false;
            st.batch_gen += 1;
        }
        let members = self.flex_fire_batch(i);
        self.flex_sync_view(i);
        EngineEvent::BatchFired {
            instance_index: i,
            members,
        }
    }

    /// Provisioning boundary passed on a flex instance: admit anything that
    /// queued up while it was unavailable.
    fn flex_on_ready(&mut self, i: usize) {
        if self.flex_try_admit(i) {
            self.flex_reschedule(i);
        }
        self.flex_sync_view(i);
    }

    /// Preemption-deadline kill of a flex instance: every member in any
    /// stage (forming, admission queue, in flight) requeues to the central
    /// queue exactly once, and the pending calendar entries die lazily.
    fn flex_kill(&mut self, instance_index: usize) -> EngineEvent {
        debug_assert_eq!(
            self.cluster.instances()[instance_index].lifecycle,
            InstanceLifecycle::Preempting
        );
        let mut requeued = 0usize;
        {
            let st = &mut self.flex_states[instance_index];
            debug_assert!(!st.in_idle, "notice already de-indexed the instance");
            if st.batch_pending {
                st.batch_pending = false;
                st.batch_gen += 1;
                self.calendar.note_cancelled();
            }
            if st.completion_pending {
                st.completion_pending = false;
                st.completion_gen += 1;
                self.calendar.note_cancelled();
            }
            st.forming_fused = 0;
            self.flex_waiting -= st.forming.len() + st.queued_members;
            while let Some((query, _)) = st.forming.pop_front() {
                self.central_queue.push(query);
                requeued += 1;
            }
            while let Some(unit) = st.queued.pop_front() {
                requeued += unit.members();
                self.central_queue.push(unit.lead);
                self.central_queue.extend(unit.rest);
            }
            for done in st.active.drain(..) {
                requeued += done.unit.members();
                self.central_queue.push(done.unit.lead);
                self.central_queue.extend(done.unit.rest);
            }
            st.queued_members = 0;
            st.active_members = 0;
        }
        {
            let inst = &mut self.cluster.instances_mut()[instance_index];
            inst.lifecycle = InstanceLifecycle::Preempted;
            let free_at = self.now.max(inst.available_from_us);
            let view = &mut self.views[instance_index];
            view.backlog = 0;
            view.free_at_us = free_at;
            debug_assert!(!view.accepting, "notice already stopped dispatches");
        }
        self.settle_bill(instance_index, self.now);
        self.preempted_instances += 1;
        self.requeued_queries += requeued;
        EngineEvent::InstancePreempted {
            instance_index,
            requeued,
        }
    }

    /// Re-derives the instance's scheduler view and idle-index membership
    /// from its flex state.  A flex instance is *dispatchable* while it can
    /// absorb another query: forming below the size cap with an empty
    /// admission queue when batching, an open admission slot (and empty
    /// queue) under sharing alone.
    fn flex_sync_view(&mut self, i: usize) {
        let (accepting, available_from_us) = {
            let inst = &self.cluster.instances()[i];
            (inst.accepts_dispatches(), inst.available_from_us)
        };
        let config = self.flex.as_ref().expect("flex view sync");
        let cap = config.concurrency_cap();
        let st = &self.flex_states[i];
        let open = match config.batching {
            Some(b) => st.forming_fused < b.max_batch_size && st.queued.is_empty(),
            None => st.queued.is_empty() && (cap == 0 || (st.active.len() as u32) < cap),
        };
        let dispatchable = accepting && open;
        let backlog = st.total_members();
        let was_indexed = st.in_idle;
        self.views[i].backlog = backlog;
        self.views[i].accepting = accepting;
        if dispatchable == was_indexed {
            return;
        }
        if dispatchable {
            self.views[i].free_at_us = self.now.max(available_from_us);
            if available_from_us > self.now {
                self.insert_idle_pending(i as u32);
            } else {
                let pos = self.idle_free.binary_search(&(i as u32)).unwrap_err();
                self.idle_free.insert(pos, i as u32);
            }
        } else {
            self.remove_idle(i as u32);
        }
        self.flex_states[i].in_idle = dispatchable;
    }

    // ---- Serverless lane: keep-alive timers, parking, cold starts -------
    //
    // A lane with a keep-alive policy tracks each instance's idle periods:
    // going idle arms a generation-stamped `KeepAliveExpiry` on the
    // calendar, a dispatch before the deadline disarms it lazily (and feeds
    // the observed gap into the lane's histogram for the hybrid policy),
    // and a live expiry parks the instance — bill settled, lifecycle
    // `Parked`, still in the idle index.  The next dispatch to a parked
    // instance restarts billing and injects the cold-start latency through
    // the provisioning clamp (`available_from_us`), so `start_next` needs
    // no serverless branch at all.

    /// Starts a tracked idle period on a live idle instance: arms the
    /// keep-alive timer under the lane's policy.  No-op for always-on lanes
    /// (no policy).
    fn serverless_arm(&mut self, i: usize) {
        let model = self.cluster.instances()[i].model.index();
        let config = self.serverless.as_ref().expect("serverless arm");
        let Some(policy) = &config.policies[model] else {
            return;
        };
        let keep_alive_us = policy.keep_alive_us(&self.idle_histograms[model]).max(1);
        let st = &mut self.serverless_states[i];
        debug_assert!(
            !st.park_pending && !st.parked,
            "arming an instance already in a tracked idle period"
        );
        st.idle_since_us = self.now;
        st.park_pending = true;
        st.park_gen += 1;
        let gen = st.park_gen;
        self.calendar.push(TimedEvent {
            time: self.now + keep_alive_us,
            seq: self.seq,
            instance_index: i,
            kind: TimedKind::KeepAliveExpiry,
            gen,
        });
        self.seq += 1;
    }

    /// A live keep-alive expiry fired: the instance parks.  Its bill
    /// settles through now, the lifecycle flips to
    /// [`InstanceLifecycle::Parked`] (unbilled from here), and it *stays*
    /// in the idle index — parked capacity is still schedulable, it just
    /// costs a cold start to use.
    fn park_instance(&mut self, i: usize) -> EngineEvent {
        {
            let st = &mut self.serverless_states[i];
            st.park_pending = false;
            st.park_gen += 1;
            st.parked = true;
            st.parked_since_us = self.now;
        }
        debug_assert_eq!(
            self.cluster.instances()[i].lifecycle,
            InstanceLifecycle::Active,
            "only a live idle instance has a live keep-alive timer"
        );
        self.settle_bill(i, self.now);
        self.cluster.instances_mut()[i].lifecycle = InstanceLifecycle::Parked;
        EngineEvent::InstanceParked { instance_index: i }
    }

    /// A dispatch landed on an idle serverless instance: ends the tracked
    /// idle period.  Records the observed gap into the lane's histogram,
    /// disarms a still-pending timer (lazy deletion), and wakes a parked
    /// instance — parked time booked, billing restarted, and the cold-start
    /// latency injected as a fresh `available_from_us` boundary so the
    /// queued query starts after it.
    fn serverless_on_dispatch(&mut self, i: usize) {
        let (model, type_index) = {
            let inst = &self.cluster.instances()[i];
            (inst.model.index(), inst.type_index)
        };
        let config = self.serverless.as_ref().expect("serverless dispatch");
        if config.policies[model].is_none() {
            return;
        }
        let cold_us = config.cold_start.cost(type_index).total_us();
        let st = &mut self.serverless_states[i];
        if !st.park_pending && !st.parked {
            // Not in a tracked idle period (e.g. first dispatch to an
            // instance still provisioning): nothing to observe or disarm.
            return;
        }
        let idle_us = self.now.saturating_sub(st.idle_since_us);
        self.idle_histograms[model].record(idle_us);
        if st.park_pending {
            st.park_pending = false;
            st.park_gen += 1;
            self.calendar.note_cancelled();
        }
        if st.parked {
            st.parked = false;
            self.parked_us_sum += self.now - st.parked_since_us;
            self.billed_start_us[i] = self.now;
            self.cold_starts += 1;
            self.cold_start_wait_us_sum += cold_us;
            let inst = &mut self.cluster.instances_mut()[i];
            inst.lifecycle = InstanceLifecycle::Active;
            inst.available_from_us = self.now + cold_us;
        }
    }

    /// An idle serverless instance leaves the dispatchable world (retire,
    /// preemption notice, outage): a pending keep-alive timer dies lazily
    /// and an open parked interval is booked.  The caller owns the
    /// lifecycle transition; a parked instance's bill stays settled (there
    /// is no container left to charge for).
    fn serverless_on_decommission(&mut self, i: usize) {
        let st = &mut self.serverless_states[i];
        if st.park_pending {
            st.park_pending = false;
            st.park_gen += 1;
            self.calendar.note_cancelled();
        }
        if st.parked {
            st.parked = false;
            self.parked_us_sum += self.now - st.parked_since_us;
        }
    }
}

/// Runs one simulation of `trace` against `config` on `pool` serving
/// `service`, distributing queries with `scheduler`.
///
/// Convenience wrapper constructing a [`SimEngine`] and running it to
/// completion.
pub fn run_trace(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: &SimulationOptions,
) -> SimReport {
    SimEngine::new(pool, config, service, trace, scheduler, options).run()
}

/// The original event loop, which keeps every event (arrivals included) in a
/// binary heap, rebuilds every [`InstanceView`] and the idle index from
/// scratch on every event, and removes dispatched queries with per-index
/// `Vec::remove` calls.
///
/// Preserved as the behavioural reference for [`SimEngine`]: the determinism
/// and property tests assert the two produce identical reports, and the
/// `simulator` Criterion bench measures the optimized engine's speedup
/// against it.
pub fn run_trace_naive(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: &SimulationOptions,
) -> SimReport {
    let mut cluster = Cluster::new(pool.clone(), config.clone());
    scheduler.bind_types(cluster.type_names());
    scheduler.bind_models(&[service.model.kind]);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let qos_us = service.qos_us();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for q in &trace.queries {
        heap.push(Reverse(Event {
            time: q.arrival_us,
            seq,
            kind: EventKind::Arrival(*q),
        }));
        seq += 1;
    }

    let mut central_queue: Vec<Query> = Vec::new();
    let mut records: Vec<QueryRecord> = Vec::new();
    let mut last_event: TimeUs = 0;
    let mut events_processed = 0u64;

    // Helper to start the next locally queued query on an idle instance.
    fn start_next(
        cluster: &mut Cluster,
        service: &ServiceSpec,
        rng: &mut StdRng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        instance_index: usize,
        now: TimeUs,
    ) {
        let inst = &mut cluster.instances_mut()[instance_index];
        debug_assert!(inst.serving.is_none(), "instance already serving a query");
        if let Some(query) = inst.local_queue.pop_front() {
            let service_us = service.service_time_us(&inst.type_name, query.batch_size, rng);
            let start_us = now.max(inst.available_from_us);
            inst.serving = Some((query, start_us));
            inst.busy_until_us = start_us + service_us;
            heap.push(Reverse(Event {
                time: inst.busy_until_us,
                seq: *seq,
                kind: EventKind::Completion { instance_index },
            }));
            *seq += 1;
        }
    }

    // Consult the scheduler and apply its dispatch decisions.
    #[allow(clippy::too_many_arguments)]
    fn invoke_scheduler(
        cluster: &mut Cluster,
        service: &ServiceSpec,
        scheduler: &mut dyn Scheduler,
        central_queue: &mut Vec<Query>,
        rng: &mut StdRng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        now: TimeUs,
        qos_us: u64,
    ) {
        if central_queue.is_empty() {
            return;
        }
        let views = build_views_naive(cluster, &[service], now);
        let idle = idle_order(&views);
        let qos_by_model = [qos_us];
        let ctx = SchedulingContext {
            now_us: now,
            queued: central_queue,
            instances: &views,
            idle: &idle,
            qos_us,
            qos_by_model: &qos_by_model,
        };
        let mut plan: Vec<Dispatch> = scheduler.schedule(&ctx);

        // Validate: indices in range, each query dispatched at most once, no
        // dispatches to non-accepting or model-mismatched instances (mirrors
        // the engine).
        let mut seen = vec![false; central_queue.len()];
        plan.retain(|d| {
            let valid = d.query_index < central_queue.len()
                && d.instance_index < cluster.len()
                && cluster.instances()[d.instance_index].accepts_dispatches()
                && cluster.instances()[d.instance_index].model
                    == central_queue[d.query_index].model
                && !seen[d.query_index];
            if valid {
                seen[d.query_index] = true;
            }
            valid
        });

        // Dispatch in the order returned by the policy.
        for d in &plan {
            let query = central_queue[d.query_index];
            let needs_start = {
                let inst = &mut cluster.instances_mut()[d.instance_index];
                inst.local_queue.push_back(query);
                inst.serving.is_none()
            };
            if needs_start {
                start_next(cluster, service, rng, heap, seq, d.instance_index, now);
            }
        }

        // Remove dispatched queries from the central queue (descending order
        // so indices stay valid).
        let mut dispatched: Vec<usize> = plan.iter().map(|d| d.query_index).collect();
        dispatched.sort_unstable_by(|a, b| b.cmp(a));
        for idx in dispatched {
            central_queue.remove(idx);
        }
    }

    while let Some(Reverse(event)) = heap.pop() {
        let now = event.time;
        last_event = last_event.max(now);
        events_processed += 1;
        match event.kind {
            EventKind::Arrival(query) => {
                central_queue.push(query);
            }
            EventKind::Completion { instance_index } => {
                let (query, start_us, type_index) = {
                    let inst = &mut cluster.instances_mut()[instance_index];
                    let (query, start_us) = inst
                        .serving
                        .take()
                        .expect("completion event for idle instance");
                    (query, start_us, inst.type_index)
                };
                records.push(QueryRecord {
                    id: query.id,
                    model: query.model,
                    batch_size: query.batch_size,
                    arrival_us: query.arrival_us,
                    start_us,
                    completion_us: now,
                    instance_index,
                    type_index,
                });
                let service_ms = (now - start_us) as f64 / 1000.0;
                scheduler.on_completion(type_index, query.model, query.batch_size, service_ms);
                // Start the next locally queued query, if any.
                start_next(
                    &mut cluster,
                    service,
                    &mut rng,
                    &mut heap,
                    &mut seq,
                    instance_index,
                    now,
                );
            }
        }
        invoke_scheduler(
            &mut cluster,
            service,
            scheduler,
            &mut central_queue,
            &mut rng,
            &mut heap,
            &mut seq,
            now,
            qos_us,
        );
    }

    // Anything still queued (centrally or locally) never completed.
    let unfinished_of = |q: &Query| UnfinishedQuery {
        id: q.id,
        model: q.model,
        batch_size: q.batch_size,
        arrival_us: q.arrival_us,
    };
    let mut unfinished: Vec<UnfinishedQuery> = central_queue.iter().map(unfinished_of).collect();
    for inst in cluster.instances() {
        unfinished.extend(inst.local_queue.iter().map(unfinished_of));
        if let Some((q, _)) = &inst.serving {
            unfinished.push(unfinished_of(q));
        }
    }

    let horizon_us = last_event.max(trace.duration_us());
    // The naive reference has no reconfiguration or market: every instance
    // rents at its listed price for the whole horizon, accumulated in index
    // order exactly as the engine's settlement loop does.
    let billed: f64 = cluster
        .instances()
        .iter()
        .map(|inst| billed_dollars(cluster.pool().price(inst.type_index), 0, horizon_us))
        .sum();
    // The naive path serves the reference variant for the whole run: every
    // completion accrues the service spec's published accuracy, summed by
    // repeated addition exactly as the engine accumulates it.
    let accuracy_sum = records
        .iter()
        .fold(0.0f64, |acc, _| acc + service.model.accuracy);
    SimReport {
        scheduler: scheduler.name().to_string(),
        records,
        unfinished,
        offered: trace.len(),
        horizon_us,
        qos_us,
        qos_by_model: vec![qos_us],
        billed_dollars: billed,
        billed_by_model: vec![billed],
        accuracy_sum_by_model: vec![accuracy_sum],
        events_processed,
        preemption_notices: 0,
        preempted_instances: 0,
        requeued_queries: 0,
        rejected_purchases: 0,
        straggler_onsets: 0,
        outages: Vec::new(),
        service: ServiceStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InstanceLifecycle;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, mlmodel::ModelKind};
    use kairos_workload::TraceSpec;

    fn setup() -> (PoolSpec, ServiceSpec) {
        (
            PoolSpec::new(ec2::paper_pool()),
            ServiceSpec::new(ModelKind::Wnd, paper_calibration()),
        )
    }

    #[test]
    fn every_offered_query_is_accounted_for() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(100.0, 1.0, 1).generate();
        let config = Config::new(vec![2, 0, 1, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        assert_eq!(report.offered, trace.len());
        assert_eq!(report.completed() + report.unfinished.len(), trace.len());
        assert_eq!(report.scheduler, "fcfs");
    }

    #[test]
    fn completions_never_precede_arrivals_and_service_is_serial() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(200.0, 1.0, 2).generate();
        let config = Config::new(vec![1, 1, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        for r in &report.records {
            assert!(r.start_us >= r.arrival_us);
            assert!(r.completion_us > r.start_us);
        }
        // One query at a time per instance: service intervals on the same
        // instance must not overlap.
        let mut by_instance: std::collections::HashMap<usize, Vec<(TimeUs, TimeUs)>> =
            std::collections::HashMap::new();
        for r in &report.records {
            by_instance
                .entry(r.instance_index)
                .or_default()
                .push((r.start_us, r.completion_us));
        }
        for intervals in by_instance.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping service intervals {w:?}");
            }
        }
    }

    #[test]
    fn light_load_on_gpu_meets_qos() {
        let (pool, service) = setup();
        // 20 QPS against one GPU that serves a mean query in ~7 ms: trivially feasible.
        let trace = TraceSpec::production(20.0, 2.0, 3).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        assert!(
            report.meets_qos(0.01),
            "violations: {}",
            report.violation_fraction()
        );
        assert!(report.unfinished.is_empty());
    }

    #[test]
    fn overload_is_detected_as_violations() {
        let (pool, service) = setup();
        // 2000 QPS against a single GPU is far beyond capacity.
        let trace = TraceSpec::production(2000.0, 1.0, 4).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        assert!(!report.meets_qos(0.05), "overload should violate QoS");
    }

    #[test]
    fn qos_probe_matches_full_replay_verdict() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 1, 0]);
        for (rate, seed) in [(30.0, 5u64), (150.0, 6), (600.0, 7), (2500.0, 8)] {
            let trace = TraceSpec::production(rate, 1.0, seed).generate();
            let opts = SimulationOptions::default();
            for tolerance in [0.0, 0.01, 0.1] {
                let mut s1 = FcfsScheduler::new();
                let full = run_trace(&pool, &config, &service, &trace, &mut s1, &opts)
                    .meets_qos(tolerance);
                let mut s2 = FcfsScheduler::new();
                let probe = SimEngine::new(&pool, &config, &service, &trace, &mut s2, &opts)
                    .run_qos_probe(tolerance);
                assert_eq!(
                    probe, full,
                    "probe verdict diverged at rate {rate} tolerance {tolerance}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed_and_trace() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(150.0, 1.0, 9).generate();
        let config = Config::new(vec![1, 1, 1, 1]);
        let opts = SimulationOptions { seed: 7 };
        let a = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let b = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        assert_eq!(a.records, b.records);
        assert_eq!(a.horizon_us, b.horizon_us);
    }

    /// A policy that dispatches queued queries in a fixed, deliberately
    /// non-monotonic order, to pin down the engine's dispatch semantics.
    struct ReversingScheduler;

    impl Scheduler for ReversingScheduler {
        fn name(&self) -> &'static str {
            "reversing"
        }

        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
            // Wait until the whole burst is visible, then dispatch the newest
            // two queries (in that order) to instance 0, leaving the rest in
            // the central queue.
            if ctx.queued.len() < 5 {
                return Vec::new();
            }
            ctx.queued
                .iter()
                .enumerate()
                .rev()
                .take(2)
                .map(|(query_index, _)| Dispatch {
                    query_index,
                    instance_index: 0,
                })
                .collect()
        }
    }

    #[test]
    fn dispatch_order_is_preserved_by_the_removal_sweep() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        // Five queries arriving together so one scheduling round sees all.
        let queries: Vec<Query> = (0..5).map(|i| Query::new(i, 10 + i as u32, 100)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = ReversingScheduler;
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        // Process the five arrival events.
        for _ in 0..5 {
            assert!(engine.step());
        }
        // The scheduling round saw queries [0,1,2,3,4] and dispatched {4, 3}
        // in that order: 4 entered service first, 3 waits in the local queue.
        let inst = &engine.cluster().instances()[0];
        assert_eq!(
            inst.serving.unwrap().0.id,
            4,
            "first dispatched query must start first"
        );
        let local: Vec<u64> = inst.local_queue.iter().map(|q| q.id).collect();
        assert_eq!(local, vec![3], "second dispatch queues behind: {local:?}");
        // The central queue keeps the remaining queries in arrival order.
        let central: Vec<u64> = engine.central_queue().iter().map(|q| q.id).collect();
        assert_eq!(central, vec![0, 1, 2], "sweep must preserve arrival order");
    }

    /// A policy that dispatches a scattered subset (every other query) so
    /// the gap-closing sweep has interior gaps to close.
    struct AlternatingScheduler;

    impl Scheduler for AlternatingScheduler {
        fn name(&self) -> &'static str {
            "alternating"
        }

        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
            if ctx.queued.len() < 6 {
                return Vec::new();
            }
            (0..ctx.queued.len())
                .step_by(2)
                .map(|query_index| Dispatch {
                    query_index,
                    instance_index: 0,
                })
                .collect()
        }
    }

    #[test]
    fn scattered_dispatches_leave_survivors_in_order() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        let queries: Vec<Query> = (0..6).map(|i| Query::new(i, 10, 100)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = AlternatingScheduler;
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        for _ in 0..6 {
            assert!(engine.step());
        }
        // Queries 0, 2, 4 were dispatched; 1, 3, 5 must survive in order.
        let central: Vec<u64> = engine.central_queue().iter().map(|q| q.id).collect();
        assert_eq!(central, vec![1, 3, 5]);
        let inst = &engine.cluster().instances()[0];
        assert_eq!(inst.serving.unwrap().0.id, 0);
        let local: Vec<u64> = inst.local_queue.iter().map(|q| q.id).collect();
        assert_eq!(local, vec![2, 4]);
    }

    #[test]
    fn added_instance_waits_for_provisioning_before_serving() {
        let (pool, service) = setup();
        // Empty-ish cluster: one GPU, plus a burst that takes it ~220 ms to
        // drain alone (Wnd batch 900 is ~18 ms on a g4dn).
        let config = Config::new(vec![1, 0, 0, 0]);
        let queries: Vec<Query> = (0..12).map(|i| Query::new(i, 900, 1_000)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        // Process the arrivals, then add a second GPU with a 50 ms delay.
        for _ in 0..12 {
            assert!(engine.step());
        }
        let added = engine.add_instance(0, 50_000);
        assert_eq!(added, 1);
        assert_eq!(
            engine.cluster().instances()[added].available_from_us,
            51_000
        );
        let report = engine.run();
        assert_eq!(report.completed(), 12);
        // Every query served by the added instance started at or after its
        // provisioning boundary.
        for r in report.records.iter().filter(|r| r.instance_index == added) {
            assert!(r.start_us >= 51_000, "start {} before ready", r.start_us);
        }
        // The added instance actually took work off the overloaded GPU.
        assert!(
            report.records.iter().any(|r| r.instance_index == added),
            "added capacity must be used"
        );
    }

    #[test]
    fn retired_instance_drains_gracefully_and_takes_no_new_work() {
        let (pool, service) = setup();
        let config = Config::new(vec![2, 0, 0, 0]);
        // Two bursts: one before retirement, one after.
        let mut queries: Vec<Query> = (0..4).map(|i| Query::new(i, 500, 1_000)).collect();
        queries.extend((4..8).map(|i| Query::new(i, 500, 400_000)));
        let trace = Trace::from_queries(queries);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        // Process the first burst, then retire instance 1 while it is busy.
        for _ in 0..4 {
            assert!(engine.step());
        }
        engine.retire_instance(1);
        assert_eq!(
            engine.cluster().instances()[1].lifecycle,
            InstanceLifecycle::Draining
        );
        let report = engine.run();
        assert_eq!(report.completed(), 8);
        // The retiring instance finished what it had but nothing that arrived
        // after retirement was requested.
        for r in report.records.iter().filter(|r| r.instance_index == 1) {
            assert!(
                r.arrival_us < 400_000,
                "query {} dispatched to a draining instance",
                r.id
            );
        }
    }

    #[test]
    fn retiring_an_idle_instance_is_immediate() {
        let (pool, service) = setup();
        let config = Config::new(vec![2, 0, 0, 0]);
        let trace = Trace::from_queries(vec![Query::new(0, 10, 100)]);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        engine.retire_instance(1);
        assert!(engine.cluster().instances()[1].is_retired());
        let report = engine.run();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.records[0].instance_index, 0);
    }

    /// A hook that scales out on the first arrival and retires the original
    /// instance once the cluster has grown — exercising `run_with_hook`.
    struct ScaleOutHook {
        added: bool,
    }

    impl EngineHook for ScaleOutHook {
        fn on_event(
            &mut self,
            _now_us: TimeUs,
            event: &EngineEvent,
            cluster: &Cluster,
        ) -> Vec<ClusterAction> {
            match event {
                EngineEvent::Arrival { .. } if !self.added => {
                    self.added = true;
                    vec![ClusterAction::AddInstance {
                        type_index: 0,
                        provisioning_delay_us: 10_000,
                    }]
                }
                EngineEvent::InstanceReady { .. } => {
                    assert!(cluster.len() > 1);
                    vec![ClusterAction::RetireInstance { instance_index: 0 }]
                }
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn hook_can_grow_and_shrink_the_cluster_mid_run() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        let trace = TraceSpec::production(100.0, 1.0, 11).generate();
        let offered = trace.len();
        let mut scheduler = FcfsScheduler::new();
        let engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        let mut hook = ScaleOutHook { added: false };
        let report = engine.run_with_hook(&mut hook);
        assert_eq!(report.completed() + report.unfinished.len(), offered);
        // After the hand-over, all late traffic runs on the added instance.
        let last = report.records.iter().max_by_key(|r| r.completion_us);
        assert_eq!(last.unwrap().instance_index, 1);
    }

    #[test]
    fn engine_matches_naive_reference_for_fcfs() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(400.0, 1.0, 21).generate();
        let config = Config::new(vec![1, 1, 2, 0]);
        let opts = SimulationOptions { seed: 3 };
        let fast = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let naive = run_trace_naive(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        assert_eq!(fast.records, naive.records);
        assert_eq!(fast.unfinished, naive.unfinished);
        assert_eq!(fast.horizon_us, naive.horizon_us);
    }

    #[test]
    fn unsorted_trace_is_replayed_in_event_order() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        // Hand-assembled out-of-order queries (bypassing `from_queries`).
        let trace = Trace {
            spec: None,
            queries: vec![
                Query::new(0, 10, 9_000),
                Query::new(1, 10, 1_000),
                Query::new(2, 10, 5_000),
            ],
        };
        let opts = SimulationOptions::default();
        let fast = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let naive = run_trace_naive(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        assert_eq!(fast.records, naive.records);
        assert_eq!(fast.records[0].id, 1);
    }

    /// A two-offering market pool: the on-demand GPU anchor plus a
    /// preemptible spot r5n with one scripted notice.
    fn spot_setup(
        notice_at_us: TimeUs,
        notice_us: TimeUs,
    ) -> (kairos_models::OfferingCatalog, kairos_models::TraceMarket) {
        use kairos_models::{
            Offering, OfferingCatalog, PreemptionProcess, PriceTrace, TraceMarket,
        };
        let catalog = OfferingCatalog::new(vec![
            Offering::on_demand(ec2::g4dn_xlarge()),
            Offering::spot(
                ec2::r5n_large(),
                PriceTrace::constant(0.05),
                PreemptionProcess::At {
                    notices_us: vec![notice_at_us],
                },
            ),
        ]);
        let market = TraceMarket::new(catalog.clone()).with_notice(notice_us);
        (catalog, market)
    }

    #[test]
    fn constant_market_attachment_is_bit_identical_to_no_market() {
        let (pool, service) = setup();
        let market = kairos_models::ConstantMarket::from_pool(&pool);
        let trace = TraceSpec::production(400.0, 1.0, 77).generate();
        let config = Config::new(vec![1, 0, 2, 0]);
        let opts = SimulationOptions { seed: 5 };
        let plain = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let mut scheduler = FcfsScheduler::new();
        let attached = SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
            .with_market(&market)
            .run();
        assert_eq!(plain.records, attached.records);
        assert_eq!(plain.unfinished, attached.unfinished);
        assert_eq!(plain.horizon_us, attached.horizon_us);
        assert_eq!(
            plain.billed_dollars.to_bits(),
            attached.billed_dollars.to_bits(),
            "constant-market billing must be bit-identical to the static path"
        );
        assert_eq!(attached.preemption_notices, 0);
        // And the static bill is exactly hourly cost × hours.
        let hours = plain.horizon_us as f64 / 3.6e9;
        assert!((plain.billed_dollars - config.cost(&pool) * hours).abs() < 1e-9);
    }

    #[test]
    fn preemption_notice_stops_dispatches_and_kill_requeues_in_flight_work_once() {
        use crate::cluster::InstanceLifecycle;
        // WND batch 900 takes ~120 ms on an r5n: a 10 ms notice window
        // cannot drain the query in flight at the 100 ms notice.
        let (catalog, market) = spot_setup(100_000, 10_000);
        let pool = catalog.effective_pool();
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        // Six heavy queries up front: FCFS puts one on each instance, the
        // rest wait centrally; more arrive long after the storm.
        let mut queries: Vec<Query> = (0..6).map(|i| Query::new(i, 900, 1_000)).collect();
        queries.extend((6..9).map(|i| Query::new(i, 900, 400_000)));
        let trace = Trace::from_queries(queries);
        let offered = trace.len();
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &Config::new(vec![1, 1]),
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        )
        .with_market(&market);

        let mut saw_notice = false;
        let mut saw_kill = false;
        let mut requeued_total = 0usize;
        while let Some(event) = engine.step_event() {
            match event {
                EngineEvent::PreemptionNotice {
                    offering,
                    affected,
                    deadline_us,
                } => {
                    saw_notice = true;
                    assert_eq!(offering, 1);
                    assert_eq!(affected, 1);
                    assert_eq!(deadline_us, 110_000);
                    let inst = &engine.cluster().instances()[1];
                    assert_eq!(inst.lifecycle, InstanceLifecycle::Preempting);
                    assert!(!inst.accepts_dispatches());
                }
                EngineEvent::InstancePreempted {
                    instance_index,
                    requeued,
                } => {
                    saw_kill = true;
                    requeued_total += requeued;
                    assert_eq!(instance_index, 1);
                    let inst = &engine.cluster().instances()[instance_index];
                    assert!(inst.is_preempted());
                    assert!(inst.is_idle(), "kill must strip all work");
                }
                _ => {}
            }
        }
        assert!(saw_notice && saw_kill);
        assert_eq!(requeued_total, 1, "exactly the in-flight query requeues");

        let report = engine.report();
        assert_eq!(report.preemption_notices, 1);
        assert_eq!(report.preempted_instances, 1);
        assert_eq!(report.requeued_queries, 1);
        // Conservation: every query completed or is reported unfinished, and
        // the requeued one appears exactly once among them.
        assert_eq!(report.completed() + report.unfinished.len(), offered);
        assert_eq!(report.completed(), offered, "the GPU drains everything");
        // Nothing was served by the spot instance after its notice.
        for r in report.records.iter().filter(|r| r.instance_index == 1) {
            assert!(
                r.completion_us <= 110_000,
                "query {} finished on the preempted instance after its kill",
                r.id
            );
        }
        // Billing: the spot instance stops billing at its kill, the GPU
        // bills through the horizon.
        let hours = |us: TimeUs| us as f64 / 3.6e9;
        let expect = 0.526 * hours(report.horizon_us) + 0.05 * hours(110_000);
        assert!(
            (report.billed_dollars - expect).abs() < 1e-12,
            "billed {} vs expected {expect}",
            report.billed_dollars
        );
    }

    #[test]
    fn preempting_instance_that_drains_early_is_killed_idle() {
        let (catalog, market) = spot_setup(100_000, 400_000);
        let pool = catalog.effective_pool();
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        // One light query on the spot instance; the generous notice window
        // lets it finish before the deadline.
        let queries: Vec<Query> = (0..2).map(|i| Query::new(i, 10, 1_000)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = FcfsScheduler::new();
        let engine = SimEngine::new(
            &pool,
            &Config::new(vec![1, 1]),
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        )
        .with_market_horizon(&market, 1_000_000);
        let report = engine.run();
        assert_eq!(report.completed(), 2);
        assert_eq!(report.preempted_instances, 1);
        assert_eq!(report.requeued_queries, 0, "drained before the deadline");
        // Billing still runs to the kill deadline (the cloud charges until
        // it reclaims the machine), not to the early drain.
        let hours = |us: TimeUs| us as f64 / 3.6e9;
        let expect = 0.526 * hours(report.horizon_us) + 0.05 * hours(500_000);
        assert!((report.billed_dollars - expect).abs() < 1e-12);
    }

    mod flex_path {
        use super::*;
        use crate::flex::SharingOptions;
        use kairos_models::ThroughputDegradation;

        /// Service time of one lone legacy query of `batch` at t = 0 on the
        /// GPU — the yardstick the sharing tests scale against.
        fn solo_service_us(batch: u32) -> TimeUs {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            let trace = Trace::from_queries(vec![Query::new(0, batch, 0)]);
            let report = run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut FcfsScheduler::new(),
                &SimulationOptions::default(),
            );
            report.records[0].completion_us - report.records[0].start_us
        }

        #[test]
        fn sharing_mode_none_is_the_legacy_engine() {
            let (pool, service) = setup();
            let trace = TraceSpec::production(400.0, 1.0, 21).generate();
            let config = Config::new(vec![1, 1, 2, 0]);
            let opts = SimulationOptions { seed: 3 };
            let plain = run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut FcfsScheduler::new(),
                &opts,
            );
            let mut scheduler = FcfsScheduler::new();
            let none = SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                .with_sharing(SharingMode::None)
                .run();
            assert_eq!(plain.records, none.records);
            assert_eq!(plain.unfinished, none.unfinished);
            assert_eq!(plain.events_processed, none.events_processed);
            assert_eq!(
                plain.billed_dollars.to_bits(),
                none.billed_dollars.to_bits()
            );
            assert_eq!(plain.service, none.service);
        }

        #[test]
        fn time_sliced_sharing_halves_the_pace_of_a_pair() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            let s = solo_service_us(100);
            let trace = Trace::from_queries(vec![Query::new(0, 100, 0), Query::new(1, 100, 0)]);
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_sharing(SharingMode::Fair(SharingOptions::uniform(
                ThroughputDegradation::TimeSliced,
            )))
            .run();
            assert_eq!(report.completed(), 2);
            // Both queries share the instance from t = 0 at half speed, so
            // both finish together at twice the solo service time.
            for r in &report.records {
                assert_eq!(r.start_us, 0);
                assert_eq!(r.completion_us, 2 * s, "records: {:?}", report.records);
            }
            // The pair's admission superseded the lone frontmost completion
            // exactly once, and the stale entry was skipped at pop.
            assert_eq!(report.service.calendar_cancelled, 1);
            assert_eq!(report.service.calendar_stale_popped, 1);
        }

        #[test]
        fn ideal_sharing_runs_the_pair_at_full_speed() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            let s = solo_service_us(100);
            let trace = Trace::from_queries(vec![Query::new(0, 100, 0), Query::new(1, 100, 0)]);
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_sharing(SharingMode::Fair(SharingOptions::uniform(
                ThroughputDegradation::Ideal,
            )))
            .run();
            assert_eq!(report.completed(), 2);
            for r in &report.records {
                assert_eq!(r.completion_us, s, "contention-free pair runs solo-speed");
            }
        }

        #[test]
        fn concurrency_cap_serializes_admissions() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            let s = solo_service_us(100);
            let trace = Trace::from_queries(vec![Query::new(0, 100, 0), Query::new(1, 100, 0)]);
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_sharing(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(1),
            ))
            .run();
            let mut completions: Vec<TimeUs> =
                report.records.iter().map(|r| r.completion_us).collect();
            completions.sort_unstable();
            // With one admission slot the discipline is serial FIFO again.
            assert_eq!(completions, vec![s, 2 * s]);
            assert_eq!(report.service.calendar_cancelled, 0);
        }

        #[test]
        fn batcher_fires_on_the_size_cap_and_on_the_timeout() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            // Four queries fuse to the 400-unit cap and fire instantly; the
            // straggler waits out the 10 ms timeout alone.
            let mut queries: Vec<Query> = (0..4).map(|i| Query::new(i, 100, 0)).collect();
            queries.push(Query::new(4, 100, 100_000));
            let trace = Trace::from_queries(queries);
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_batching(BatchingOptions::new(400, 10_000))
            .run();
            assert_eq!(report.completed(), 5);
            assert_eq!(report.service.batches_fired, 2);
            assert_eq!(report.service.batched_queries, 5);
            assert_eq!(report.service.batch_fill_sum, 5);
            // The full batch fired with zero forming wait; the straggler
            // waited exactly the timeout.
            assert_eq!(report.service.batch_wait_us_sum, 10_000);
            // Size-cap firing cancelled the full batch's timer; the timer's
            // stale calendar entry was later skipped at pop.
            assert_eq!(report.service.calendar_cancelled, 1);
            assert_eq!(report.service.calendar_stale_popped, 1);
            // The four fused members share one invocation: same start, same
            // completion, and a fused service time below four solo passes.
            let fused: Vec<_> = report.records.iter().filter(|r| r.id < 4).collect();
            let solo = solo_service_us(100);
            for r in &fused {
                assert_eq!(r.start_us, fused[0].start_us);
                assert_eq!(r.completion_us, fused[0].completion_us);
            }
            let fused_service = fused[0].completion_us - fused[0].start_us;
            assert!(
                fused_service < 4 * solo,
                "batching must amortize the intercept: {fused_service} vs 4 x {solo}"
            );
            // The straggler fires at arrival + timeout and serves alone.
            let straggler = report.records.iter().find(|r| r.id == 4).unwrap();
            assert_eq!(straggler.start_us, 110_000);
            assert_eq!(straggler.completion_us - straggler.start_us, solo);
        }

        #[test]
        fn batching_only_serves_fused_invocations_serially() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            // Two full batches back to back: the second fires while the
            // first is still in service and must wait for its slot.
            let queries: Vec<Query> = (0..8).map(|i| Query::new(i, 100, 0)).collect();
            let trace = Trace::from_queries(queries);
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_batching(BatchingOptions::new(400, 10_000))
            .run();
            assert_eq!(report.completed(), 8);
            assert_eq!(report.service.batches_fired, 2);
            let mut intervals: Vec<(TimeUs, TimeUs)> = report
                .records
                .iter()
                .map(|r| (r.start_us, r.completion_us))
                .collect();
            intervals.sort_unstable();
            intervals.dedup();
            assert_eq!(intervals.len(), 2, "two distinct fused invocations");
            assert!(
                intervals[0].1 <= intervals[1].0,
                "one invocation at a time without sharing: {intervals:?}"
            );
        }

        #[test]
        fn preemption_kill_requeues_every_flex_stage_once() {
            let (catalog, market) = spot_setup(100_000, 10_000);
            let pool = catalog.effective_pool();
            let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
            // Heavy fused batches on both instances; the spot instance dies
            // mid-service and everything it held drains on the GPU.  The
            // late arrivals extend the trace horizon past the notice.
            let mut queries: Vec<Query> = (0..12).map(|i| Query::new(i, 900, 1_000)).collect();
            queries.extend((12..14).map(|i| Query::new(i, 900, 400_000)));
            let trace = Trace::from_queries(queries);
            let offered = trace.len();
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(
                &pool,
                &Config::new(vec![1, 1]),
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_market(&market)
            .with_sharing(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(2),
            ))
            .with_batching(BatchingOptions::new(1_800, 5_000))
            .run();
            assert_eq!(report.preempted_instances, 1);
            assert!(report.requeued_queries > 0, "the kill must strip work");
            assert_eq!(
                report.completed() + report.unfinished.len(),
                offered,
                "every query is accounted for exactly once"
            );
            assert_eq!(report.completed(), offered, "the GPU drains everything");
            for r in report.records.iter().filter(|r| r.instance_index == 1) {
                assert!(r.completion_us <= 110_000, "completion after the kill");
            }
            assert!(
                report.service.calendar_stale_popped <= report.service.calendar_cancelled,
                "every skipped entry must have been cancelled first"
            );
        }

        #[test]
        fn retiring_a_loaded_flex_instance_drains_before_terminating() {
            let (pool, service) = setup();
            let config = Config::new(vec![2, 0, 0, 0]);
            let mut queries: Vec<Query> = (0..4).map(|i| Query::new(i, 500, 1_000)).collect();
            queries.extend((4..8).map(|i| Query::new(i, 500, 400_000)));
            let trace = Trace::from_queries(queries);
            let mut scheduler = FcfsScheduler::new();
            let mut engine = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_sharing(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(2),
            ));
            for _ in 0..4 {
                assert!(engine.step());
            }
            // Retire instance 1 while its flex stages hold work: the
            // cluster-level idleness check must not retire it on the spot.
            engine.retire_instance(1);
            assert_eq!(
                engine.cluster().instances()[1].lifecycle,
                InstanceLifecycle::Draining
            );
            let report = engine.run();
            assert_eq!(report.completed(), 8);
            for r in report.records.iter().filter(|r| r.instance_index == 1) {
                assert!(
                    r.arrival_us < 400_000,
                    "query {} dispatched to a draining flex instance",
                    r.id
                );
            }
        }

        #[test]
        fn flex_instance_added_mid_run_provisions_before_admitting() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            let queries: Vec<Query> = (0..12).map(|i| Query::new(i, 900, 1_000)).collect();
            let trace = Trace::from_queries(queries);
            let mut scheduler = FcfsScheduler::new();
            let mut engine = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut scheduler,
                &SimulationOptions::default(),
            )
            .with_sharing(SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::TimeSliced).with_max_concurrency(1),
            ));
            for _ in 0..12 {
                assert!(engine.step());
            }
            let added = engine.add_instance(0, 50_000);
            let report = engine.run();
            assert_eq!(report.completed(), 12);
            for r in report.records.iter().filter(|r| r.instance_index == added) {
                assert!(r.start_us >= 51_000, "start {} before ready", r.start_us);
            }
            assert!(
                report.records.iter().any(|r| r.instance_index == added),
                "added capacity must be used"
            );
        }
    }

    #[test]
    fn incremental_views_match_recomputed_views_each_step() {
        let (pool, service) = setup();
        // FCFS dispatches to idle instances only, so this exercises the
        // serving-slot accounting; deep-local-queue coverage (and the full
        // 10k-query regression) lives in tests/engine_regression.rs with a
        // queue-building scheduler.
        let trace = TraceSpec::production(600.0, 0.5, 31).generate();
        let config = Config::new(vec![1, 0, 1, 0]);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        let mut steps = 0usize;
        while engine.step() {
            let reference = engine.recompute_views();
            let reference_idle = idle_order(&reference);
            let (views, idle) = engine.scheduler_views();
            assert_eq!(views, &reference[..], "views diverged at step {steps}");
            assert_eq!(idle, &reference_idle[..], "idle diverged at step {steps}");
            steps += 1;
        }
        assert!(
            steps > trace.len(),
            "simulation should process every arrival"
        );
    }

    #[test]
    fn zone_outage_kills_the_domain_and_books_the_record() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(200.0, 2.0, 5).generate();
        // Two instances of type 0 (zone a) and two of type 2 (zone b).
        let config = Config::new(vec![2, 0, 2, 0]);
        let zone_a = FailureDomain::zone("us-east-1", "us-east-1a");
        let zone_b = FailureDomain::zone("us-east-1", "us-east-1b");
        let placements = vec![
            zone_a.clone(),
            zone_a.clone(),
            zone_b.clone(),
            zone_b.clone(),
        ];
        let process = FaultProcess::new(vec![FaultEvent::ZoneOutage {
            domain: zone_a.clone(),
            start_us: 500_000,
            duration_us: 400_000,
        }]);
        let mut fcfs = FcfsScheduler::new();
        let report = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        )
        .with_faults(&process, &placements)
        .run();
        assert_eq!(report.outages.len(), 1);
        let outage = &report.outages[0];
        assert_eq!(outage.domain, zone_a.label());
        assert_eq!((outage.start_us, outage.end_us), (500_000, 900_000));
        // Both zone-a instances die; zone b survives untouched.
        assert_eq!(outage.killed_instances, 2);
        assert_eq!(report.preempted_instances, 2);
        assert!(report.records.iter().all(|r| r.completion_us
            < 500_000 + FaultProcess::DEFAULT_NOTICE_US
            || r.type_index >= 2));
        // Conservation and the lazy-deletion invariant hold on fault paths.
        assert_eq!(report.completed() + report.unfinished.len(), report.offered);
        assert!(report.service.calendar_stale_popped <= report.service.calendar_cancelled);
        assert!(report.service.calendar_cancelled <= report.service.calendar_scheduled);
    }

    #[test]
    fn capacity_shortage_rejects_purchases_with_a_typed_error() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(50.0, 1.0, 9).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let process = FaultProcess::new(vec![FaultEvent::CapacityShortage {
            domain: FailureDomain::global(),
            start_us: 100_000,
            end_us: 30_000_000,
        }]);
        let mut fcfs = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        )
        .with_faults(&process, &[]);
        let mut toggles = 0usize;
        while let Some(event) = engine.step_event() {
            match event {
                EngineEvent::CapacityShortage { active: true, .. } => {
                    toggles += 1;
                    let err = engine
                        .try_add_instance_for(ModelId::DEFAULT, 1, 0)
                        .unwrap_err();
                    assert_eq!(err.cause, RejectionCause::CapacityShortage);
                    assert_eq!(err.type_index, 1);
                    assert_eq!(err.at_us, 100_000);
                }
                EngineEvent::CapacityShortage { active: false, .. } => {
                    toggles += 1;
                    assert!(engine.try_add_instance_for(ModelId::DEFAULT, 1, 0).is_ok());
                }
                _ => {}
            }
        }
        assert_eq!(toggles, 2);
        let report = engine.report();
        assert_eq!(report.rejected_purchases, 1);
    }

    mod serverless_lane {
        use super::*;
        use crate::serverless::ServerlessConfig;
        use kairos_models::{ColdStartCost, ColdStartProfile, KeepAlivePolicy};

        fn cold_profile() -> ColdStartProfile {
            ColdStartProfile::uniform(ColdStartCost::new(200_000, 300_000))
        }

        #[test]
        fn all_none_policies_are_the_legacy_engine() {
            let (pool, service) = setup();
            let trace = TraceSpec::production(300.0, 1.0, 21).generate();
            let config = Config::new(vec![1, 0, 2, 0]);
            let opts = SimulationOptions { seed: 9 };
            let plain = run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut FcfsScheduler::new(),
                &opts,
            );
            let mut scheduler = FcfsScheduler::new();
            let attached = SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                .with_serverless(ServerlessConfig {
                    policies: vec![None],
                    cold_start: cold_profile(),
                })
                .run();
            assert_eq!(plain.records, attached.records);
            assert_eq!(plain.unfinished, attached.unfinished);
            assert_eq!(plain.horizon_us, attached.horizon_us);
            assert_eq!(
                plain.billed_dollars.to_bits(),
                attached.billed_dollars.to_bits()
            );
            assert_eq!(plain.events_processed, attached.events_processed);
            assert_eq!(attached.service.cold_starts, 0);
            assert_eq!(attached.service.parked_us_sum, 0);
        }

        #[test]
        fn fixed_keep_alive_parks_then_cold_start_delays_the_wake_dispatch() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            // One query, a 10 s silence, a second query: the instance parks
            // 1 s after the first completion and pays the cold start on the
            // second dispatch.
            let trace = Trace {
                spec: None,
                queries: vec![Query::new(0, 10, 0), Query::new(1, 10, 10_000_000)],
            };
            let opts = SimulationOptions::default();
            let plain = run_trace(
                &pool,
                &config,
                &service,
                &trace,
                &mut FcfsScheduler::new(),
                &opts,
            );
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                .with_serverless(ServerlessConfig::uniform(
                    KeepAlivePolicy::fixed(1_000_000).unwrap(),
                    1,
                    cold_profile(),
                ))
                .run();
            assert_eq!(report.completed(), 2);
            let c0 = report.records[0].completion_us;
            // The wake dispatch starts exactly one cold start after arrival.
            assert_eq!(report.records[1].start_us, 10_000_000 + 500_000);
            assert_eq!(report.service.cold_starts, 1);
            assert_eq!(report.service.cold_start_wait_us_sum, 500_000);
            // Parked from (first completion + keep-alive) to the wake; the
            // post-run park at (second completion + keep-alive) lies beyond
            // the horizon and accrues nothing.
            assert_eq!(report.service.parked_us_sum, 10_000_000 - (c0 + 1_000_000));
            // The parked window is unbilled: strictly cheaper than the same
            // run without a keep-alive policy, whose bill covers the whole
            // horizon.
            assert!(report.billed_dollars < plain.billed_dollars);
            // The serverless QoS tail: the woken query is late only by the
            // cold start, which the 300 ms WND target absorbs... unless it
            // doesn't — just check accounting consistency here.
            assert!(report.service.calendar_stale_popped <= report.service.calendar_cancelled);
        }

        #[test]
        fn hybrid_policy_learns_the_idle_gap_and_still_parks_the_long_tail() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            // Three short (~2 s) gaps teach the histogram, then a 24 s
            // silence: the learned percentile deadline is far below the
            // histogram span, so the tail parks and the last query pays a
            // cold start.
            let trace = Trace {
                spec: None,
                queries: vec![
                    Query::new(0, 10, 0),
                    Query::new(1, 10, 2_000_000),
                    Query::new(2, 10, 4_000_000),
                    Query::new(3, 10, 6_000_000),
                    Query::new(4, 10, 30_000_000),
                ],
            };
            let opts = SimulationOptions::default();
            let mut scheduler = FcfsScheduler::new();
            let report = SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                .with_serverless(ServerlessConfig::uniform(
                    KeepAlivePolicy::hybrid(1_000_000, 20, 0.9).unwrap(),
                    1,
                    cold_profile(),
                ))
                .run();
            assert_eq!(report.completed(), 5);
            assert!(
                report.service.cold_starts >= 1,
                "the 24 s silence must outlive the learned keep-alive"
            );
            assert!(report.service.parked_us_sum > 0);
            // The learned deadline is at most the 3 s bucket edge, so the
            // tail parks within ~9 s of the fourth completion — well before
            // the last arrival at 30 s.
            assert_eq!(report.records[4].start_us, 30_000_000 + 500_000);
        }

        #[test]
        fn retiring_an_armed_or_parked_instance_settles_cleanly() {
            let (pool, service) = setup();
            let config = Config::new(vec![1, 0, 0, 0]);
            let trace = Trace {
                spec: None,
                queries: vec![Query::new(0, 10, 0)],
            };
            let opts = SimulationOptions::default();
            // Case 1: retire while the keep-alive timer is pending — the
            // timer dies lazily and the run drains without a park.
            let mut scheduler = FcfsScheduler::new();
            let mut engine =
                SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_serverless(ServerlessConfig::uniform(
                        KeepAlivePolicy::fixed(1_000_000).unwrap(),
                        1,
                        cold_profile(),
                    ));
            while let Some(event) = engine.step_event() {
                if matches!(event, EngineEvent::Completion { .. }) {
                    engine.retire_instance(0);
                }
            }
            let report = engine.report();
            assert_eq!(report.service.parked_us_sum, 0);
            assert_eq!(report.service.cold_starts, 0);
            assert!(report.service.calendar_cancelled >= 1);
            assert!(report.service.calendar_stale_popped <= report.service.calendar_cancelled);
            assert!(engine_retired(&report));

            // Case 2: retire after the park — the open parked interval is
            // booked at the retire instant and billing stays settled.
            let mut scheduler = FcfsScheduler::new();
            let mut engine =
                SimEngine::new(&pool, &config, &service, &trace, &mut scheduler, &opts)
                    .with_serverless(ServerlessConfig::uniform(
                        KeepAlivePolicy::fixed(1_000_000).unwrap(),
                        1,
                        cold_profile(),
                    ));
            let mut parked_at = None;
            while let Some(event) = engine.step_event() {
                if matches!(event, EngineEvent::InstanceParked { .. }) {
                    parked_at = Some(engine.now());
                    engine.retire_instance(0);
                }
            }
            let parked_at = parked_at.expect("the idle instance must park");
            let report = engine.report();
            // Retired at the park instant: the open parked interval is
            // closed with zero length, and the bill covers exactly [0, park).
            assert_eq!(report.service.parked_us_sum, 0);
            let hours = parked_at as f64 / 3.6e9;
            assert!((report.billed_dollars - pool.price(0) * hours).abs() < 1e-9);
        }

        fn engine_retired(report: &SimReport) -> bool {
            // The retired instance never parks, so the whole horizon bills.
            report.service.parked_us_sum == 0
        }
    }

    #[test]
    fn straggler_stretches_service_on_the_victim() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(100.0, 1.0, 3).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let run = |process: Option<&FaultProcess>| {
            let mut fcfs = FcfsScheduler::new();
            let mut engine = SimEngine::new(
                &pool,
                &config,
                &service,
                &trace,
                &mut fcfs,
                &SimulationOptions::default(),
            );
            if let Some(p) = process {
                engine = engine.with_faults(p, &[]);
            }
            engine.run()
        };
        let healthy = run(None);
        let process = FaultProcess::new(vec![FaultEvent::Straggler {
            at_us: 0,
            offering: 0,
            slowdown: 0.25,
        }]);
        let degraded = run(Some(&process));
        assert_eq!(degraded.straggler_onsets, 1);
        assert_eq!(healthy.straggler_onsets, 0);
        // Quarter throughput → every service stretches 4x; the run is
        // strictly worse end to end.
        assert!(degraded.mean_latency_ms() > healthy.mean_latency_ms());
        assert!(degraded.horizon_us > healthy.horizon_us);
        // A straggler targeting an offering with no live instance fizzles.
        let fizzle = run(Some(&FaultProcess::new(vec![FaultEvent::Straggler {
            at_us: 0,
            offering: 3,
            slowdown: 0.5,
        }])));
        assert_eq!(fizzle.straggler_onsets, 0);
        assert_eq!(fizzle.mean_latency_ms(), healthy.mean_latency_ms());
    }
}

//! Discrete-event simulation engine.
//!
//! The engine plays a [`Trace`] of queries against a [`Cluster`] under a
//! pluggable [`Scheduler`] policy, using a virtual clock in microseconds.
//! It reproduces the serving model of the paper's implementation (Sec. 6):
//! a central controller receives all queries, decides the query-to-instance
//! mapping, and each instance serves exactly one query at a time from its own
//! FIFO of dispatched queries.
//!
//! Events are (a) query arrivals and (b) query completions; the scheduler is
//! consulted after every event so it can react to freed capacity immediately.
//!
//! # Architecture
//!
//! [`SimEngine`] owns the clock, the event heap, the central queue, the
//! cluster and the RNG, and exposes `step()` / `run()` / `report()` so
//! callers (the capacity search, Kairos+, the baseline searches and the
//! bench harness) all drive simulations through one API.
//!
//! The scheduler's [`InstanceView`]s are maintained **incrementally**: each
//! instance's `free_at_us` is a running value updated on dispatch and
//! completion instead of being recomputed from the local queue on every
//! event, and dispatched queries leave the central queue through a single
//! mark-and-shift sweep instead of per-index `Vec::remove` calls.  The
//! original per-event full rebuild is preserved as [`run_trace_naive`] (and
//! [`SimEngine::recompute_views`]) — it is the reference against which
//! determinism and the incremental views are tested, and the baseline for
//! the `simulator` Criterion bench.
//!
//! # Online reconfiguration
//!
//! The engine is not a closed trace replayer: an external driver can observe
//! every event and mutate the cluster mid-run.  Two mechanisms exist:
//!
//! * **Stepping** — [`SimEngine::step_event`] processes one event and returns
//!   an owned [`EngineEvent`] describing it; between steps the driver may
//!   call [`SimEngine::add_instance`] / [`SimEngine::retire_instance`] (or
//!   [`SimEngine::apply`] with [`ClusterAction`]s).  This is how
//!   `kairos_core::ServingSystem` runs the Kairos controller in the loop.
//! * **Hooks** — [`SimEngine::run_with_hook`] drives the run to completion,
//!   handing every event (plus a cluster snapshot) to an [`EngineHook`]
//!   whose returned actions are applied before the next event.
//!
//! Added instances come online after a provisioning delay (a dedicated
//! `Ready` event re-consults the scheduler the instant capacity appears);
//! retired instances drain gracefully and never receive new dispatches.  The
//! incremental `free_at_us` views stay bit-identical to a from-scratch
//! recomputation across any interleaving of reconfiguration actions — this
//! invariant is enforced by `tests/proptest_reconfig.rs`.

use crate::cluster::{Cluster, ServiceSpec};
use crate::scheduler::{Dispatch, InstanceView, Scheduler, SchedulingContext};
use crate::stats::{QueryRecord, SimReport, UnfinishedQuery};
use kairos_models::{Config, PoolSpec};
use kairos_workload::{Query, TimeUs, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Options controlling one simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulationOptions {
    /// Seed of the service-time noise RNG (ignored when the service is
    /// deterministic, which is the paper's default).
    pub seed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Arrival(Query),
    Completion {
        instance_index: usize,
    },
    /// A provisioned instance comes online: no state change beyond the
    /// scheduler consultation that lets waiting queries flow to it.
    Ready {
        instance_index: usize,
    },
}

/// Owned description of one processed engine event, handed to external
/// drivers (the serving loop, autoscalers, hooks).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A query arrived at the central queue.
    Arrival {
        /// The arriving query.
        query: Query,
    },
    /// A query finished service.
    Completion {
        /// The completion record (latency, instance, type).
        record: QueryRecord,
        /// Type name of the serving instance.
        type_name: Arc<str>,
    },
    /// A previously added instance finished provisioning and is now live.
    InstanceReady {
        /// Index of the instance that came online.
        instance_index: usize,
    },
}

/// A cluster mutation requested by an external driver or [`EngineHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAction {
    /// Add an instance of the given pool type; it comes online after the
    /// provisioning delay.
    AddInstance {
        /// Index of the instance type within the pool.
        type_index: usize,
        /// Time between the action and the instance accepting work.
        provisioning_delay_us: TimeUs,
    },
    /// Gracefully retire the instance at the given index.
    RetireInstance {
        /// Index of the instance within the cluster.
        instance_index: usize,
    },
}

/// Observer-and-actuator interface for [`SimEngine::run_with_hook`]: after
/// every event the hook sees what happened plus the current cluster state,
/// and returns cluster actions the engine applies before the next event.
pub trait EngineHook {
    /// Called after every processed event.  `now_us` is the engine clock.
    fn on_event(
        &mut self,
        now_us: TimeUs,
        event: &EngineEvent,
        cluster: &Cluster,
    ) -> Vec<ClusterAction>;
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: TimeUs,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Nominal (noise-free) service time of a batch in rounded microseconds —
/// the unit of the incremental `free_at_us` accounting.
#[inline]
fn nominal_us(service: &ServiceSpec, type_name: &str, batch: u32) -> TimeUs {
    let nominal_ms = service.nominal_latency_ms(type_name, batch);
    (nominal_ms * 1000.0).round().max(1.0) as TimeUs
}

/// Builds scheduler views by recomputing every instance's `free_at_us` from
/// its local queue — the original O(instances × queue-depth) path, kept as
/// the reference implementation for [`run_trace_naive`] and the regression
/// tests.
fn build_views_naive(cluster: &Cluster, service: &ServiceSpec, now: TimeUs) -> Vec<InstanceView> {
    cluster
        .instances()
        .iter()
        .map(|inst| {
            let mut free_at = if inst.serving.is_some() {
                inst.busy_until_us.max(now)
            } else {
                now.max(inst.available_from_us)
            };
            // Account for the nominal service time of locally queued work.
            for q in &inst.local_queue {
                free_at += nominal_us(service, &inst.type_name, q.batch_size);
            }
            InstanceView {
                instance_index: inst.index,
                type_index: inst.type_index,
                type_name: inst.type_name.clone(),
                is_base: inst.is_base,
                accepting: inst.accepts_dispatches(),
                free_at_us: free_at,
                backlog: inst.backlog(),
            }
        })
        .collect()
}

/// The discrete-event serving simulator.
///
/// Owns all mutable simulation state; every event advances the virtual clock,
/// applies the event, and consults the scheduler.  Construct one engine per
/// `(configuration, trace, scheduler)` run:
///
/// ```
/// use kairos_models::{calibration::paper_calibration, ec2, Config, PoolSpec, ModelKind};
/// use kairos_sim::{FcfsScheduler, ServiceSpec, SimEngine, SimulationOptions};
/// use kairos_workload::TraceSpec;
///
/// let pool = PoolSpec::new(ec2::paper_pool());
/// let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
/// let trace = TraceSpec::production(50.0, 1.0, 7).generate();
/// let mut scheduler = FcfsScheduler::new();
/// let engine = SimEngine::new(
///     &pool,
///     &Config::new(vec![1, 0, 1, 0]),
///     &service,
///     &trace,
///     &mut scheduler,
///     &SimulationOptions::default(),
/// );
/// let report = engine.run();
/// assert_eq!(report.offered, trace.len());
/// ```
pub struct SimEngine<'a> {
    service: &'a ServiceSpec,
    scheduler: &'a mut dyn Scheduler,
    cluster: Cluster,
    rng: StdRng,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    central_queue: Vec<Query>,
    records: Vec<QueryRecord>,
    /// Persistent scheduler views; `free_at_us` / `backlog` are refreshed
    /// from the incremental counters, the identity fields are built once.
    views: Vec<InstanceView>,
    /// Per-instance running sum of the (individually rounded) nominal
    /// service times of locally queued queries.
    local_nominal_us: Vec<TimeUs>,
    now: TimeUs,
    last_event: TimeUs,
    offered: usize,
    trace_duration_us: TimeUs,
    qos_us: u64,
}

impl<'a> SimEngine<'a> {
    /// Builds an engine for one simulation of `trace` against `config` on
    /// `pool` serving `service`, distributing queries with `scheduler`.
    pub fn new(
        pool: &PoolSpec,
        config: &Config,
        service: &'a ServiceSpec,
        trace: &Trace,
        scheduler: &'a mut dyn Scheduler,
        options: &SimulationOptions,
    ) -> Self {
        let cluster = Cluster::new(pool.clone(), config.clone());
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::with_capacity(trace.len());
        let mut seq = 0u64;
        for q in &trace.queries {
            heap.push(Reverse(Event {
                time: q.arrival_us,
                seq,
                kind: EventKind::Arrival(*q),
            }));
            seq += 1;
        }
        let views = build_views_naive(&cluster, service, 0);
        let local_nominal_us = vec![0; cluster.len()];
        Self {
            service,
            scheduler,
            cluster,
            rng: StdRng::seed_from_u64(options.seed),
            heap,
            seq,
            central_queue: Vec::new(),
            records: Vec::new(),
            views,
            local_nominal_us,
            now: 0,
            last_event: 0,
            offered: trace.len(),
            trace_duration_us: trace.duration_us(),
            qos_us: service.qos_us(),
        }
    }

    /// Current virtual time (time of the last processed event).
    pub fn now(&self) -> TimeUs {
        self.now
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Queries waiting in the central queue, in arrival order.
    pub fn central_queue(&self) -> &[Query] {
        &self.central_queue
    }

    /// Completion records gathered so far.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// The incrementally maintained scheduler views, refreshed to the
    /// current clock.
    pub fn views(&mut self) -> &[InstanceView] {
        self.refresh_views();
        &self.views
    }

    /// Recomputes the scheduler views from scratch (O(instances ×
    /// queue-depth)).  Reference implementation for tests; the hot path uses
    /// the incremental counters instead.
    pub fn recompute_views(&self) -> Vec<InstanceView> {
        build_views_naive(&self.cluster, self.service, self.now)
    }

    /// Processes the next event, consulting the scheduler afterwards.
    /// Returns `false` once the event heap is exhausted.
    pub fn step(&mut self) -> bool {
        self.step_event().is_some()
    }

    /// Processes the next event and returns an owned description of it, so an
    /// external driver can observe arrivals/completions and reconfigure the
    /// cluster between steps.  Returns `None` once the event heap is
    /// exhausted.
    pub fn step_event(&mut self) -> Option<EngineEvent> {
        let Reverse(event) = self.heap.pop()?;
        self.now = event.time;
        self.last_event = self.last_event.max(self.now);
        let observed = match event.kind {
            EventKind::Arrival(query) => {
                self.central_queue.push(query);
                EngineEvent::Arrival { query }
            }
            EventKind::Completion { instance_index } => {
                let (query, start_us, type_index, type_name) = {
                    let inst = &mut self.cluster.instances_mut()[instance_index];
                    let (query, start_us) = inst
                        .serving
                        .take()
                        .expect("completion event for idle instance");
                    (query, start_us, inst.type_index, inst.type_name.clone())
                };
                let record = QueryRecord {
                    id: query.id,
                    batch_size: query.batch_size,
                    arrival_us: query.arrival_us,
                    start_us,
                    completion_us: self.now,
                    instance_index,
                    type_index,
                };
                self.records.push(record);
                let service_ms = (self.now - start_us) as f64 / 1000.0;
                self.scheduler
                    .on_completion(&type_name, query.batch_size, service_ms);
                // Start the next locally queued query, if any; a draining
                // instance that just emptied transitions to retired.
                self.start_next(instance_index);
                self.cluster.settle_drained(instance_index);
                EngineEvent::Completion { record, type_name }
            }
            EventKind::Ready { instance_index } => EngineEvent::InstanceReady { instance_index },
        };
        self.invoke_scheduler();
        Some(observed)
    }

    /// Adds an instance of the given pool type to the live cluster.  The
    /// instance is visible to the scheduler immediately but cannot start
    /// serving until `provisioning_delay_us` has elapsed; a `Ready` event
    /// re-consults the scheduler the moment it comes online.  Returns the new
    /// instance's index.
    pub fn add_instance(&mut self, type_index: usize, provisioning_delay_us: TimeUs) -> usize {
        let ready_at = self.now + provisioning_delay_us;
        let instance_index = self.cluster.add_instance(type_index, ready_at);
        let inst = &self.cluster.instances()[instance_index];
        self.views.push(InstanceView {
            instance_index,
            type_index,
            type_name: inst.type_name.clone(),
            is_base: inst.is_base,
            accepting: true,
            free_at_us: ready_at.max(self.now),
            backlog: 0,
        });
        self.local_nominal_us.push(0);
        self.heap.push(Reverse(Event {
            time: ready_at,
            seq: self.seq,
            kind: EventKind::Ready { instance_index },
        }));
        self.seq += 1;
        instance_index
    }

    /// Gracefully retires an instance: it accepts no further dispatches and
    /// transitions to retired once its local queue drains (immediately if
    /// idle).  Queries already dispatched to it are still served.
    pub fn retire_instance(&mut self, instance_index: usize) {
        self.cluster.retire_instance(instance_index);
        self.views[instance_index].accepting = false;
    }

    /// Applies a [`ClusterAction`] (driver convenience).
    pub fn apply(&mut self, action: ClusterAction) {
        match action {
            ClusterAction::AddInstance {
                type_index,
                provisioning_delay_us,
            } => {
                self.add_instance(type_index, provisioning_delay_us);
            }
            ClusterAction::RetireInstance { instance_index } => {
                self.retire_instance(instance_index);
            }
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        self.report()
    }

    /// Runs the simulation to completion with a reconfiguration hook in the
    /// loop: after every event the hook observes what happened and may return
    /// cluster actions, which are applied before the next event.
    pub fn run_with_hook(mut self, hook: &mut dyn EngineHook) -> SimReport {
        while let Some(event) = self.step_event() {
            for action in hook.on_event(self.now, &event, &self.cluster) {
                self.apply(action);
            }
        }
        self.report()
    }

    /// Finalizes the run: anything still queued (centrally or locally) is
    /// reported as unfinished.
    pub fn report(self) -> SimReport {
        let mut unfinished: Vec<UnfinishedQuery> = self
            .central_queue
            .iter()
            .map(|q| UnfinishedQuery {
                id: q.id,
                batch_size: q.batch_size,
                arrival_us: q.arrival_us,
            })
            .collect();
        for inst in self.cluster.instances() {
            for q in &inst.local_queue {
                unfinished.push(UnfinishedQuery {
                    id: q.id,
                    batch_size: q.batch_size,
                    arrival_us: q.arrival_us,
                });
            }
            if let Some((q, _)) = inst.serving {
                unfinished.push(UnfinishedQuery {
                    id: q.id,
                    batch_size: q.batch_size,
                    arrival_us: q.arrival_us,
                });
            }
        }

        let horizon_us = self.last_event.max(self.trace_duration_us);
        SimReport {
            scheduler: self.scheduler.name().to_string(),
            records: self.records,
            unfinished,
            offered: self.offered,
            horizon_us,
            qos_us: self.qos_us,
        }
    }

    /// Starts the next locally queued query on an idle instance.  Service
    /// cannot begin before the instance's provisioning boundary.
    fn start_next(&mut self, instance_index: usize) {
        let inst = &mut self.cluster.instances_mut()[instance_index];
        debug_assert!(inst.serving.is_none(), "instance already serving a query");
        if let Some(query) = inst.local_queue.pop_front() {
            // The query leaves the local queue: retire its nominal estimate
            // from the incremental view and charge the actual service time.
            self.local_nominal_us[instance_index] -=
                nominal_us(self.service, &inst.type_name, query.batch_size);
            let service_us =
                self.service
                    .service_time_us(&inst.type_name, query.batch_size, &mut self.rng);
            let start_us = self.now.max(inst.available_from_us);
            inst.serving = Some((query, start_us));
            inst.busy_until_us = start_us + service_us;
            self.heap.push(Reverse(Event {
                time: inst.busy_until_us,
                seq: self.seq,
                kind: EventKind::Completion { instance_index },
            }));
            self.seq += 1;
        }
    }

    /// Refreshes `free_at_us` / `backlog` / `accepting` of every view from
    /// the incremental counters — O(instances) arithmetic, no queue walks, no
    /// allocation.
    fn refresh_views(&mut self) {
        let now = self.now;
        for (view, inst) in self.views.iter_mut().zip(self.cluster.instances()) {
            let base = if inst.serving.is_some() {
                inst.busy_until_us.max(now)
            } else {
                now.max(inst.available_from_us)
            };
            view.free_at_us = base + self.local_nominal_us[inst.index];
            view.backlog = inst.backlog();
            view.accepting = inst.accepts_dispatches();
        }
    }

    /// Consults the scheduler and applies its dispatch decisions.
    fn invoke_scheduler(&mut self) {
        if self.central_queue.is_empty() {
            return;
        }
        self.refresh_views();
        let ctx = SchedulingContext {
            now_us: self.now,
            queued: &self.central_queue,
            instances: &self.views,
            qos_us: self.qos_us,
        };
        let mut plan: Vec<Dispatch> = self.scheduler.schedule(&ctx);

        // Validate: indices in range, each query dispatched at most once, and
        // no dispatches to draining/retired instances.
        let mut dispatched = vec![false; self.central_queue.len()];
        let cluster = &self.cluster;
        plan.retain(|d| {
            let valid = d.query_index < dispatched.len()
                && d.instance_index < cluster.len()
                && cluster.instances()[d.instance_index].accepts_dispatches()
                && !dispatched[d.query_index];
            if valid {
                dispatched[d.query_index] = true;
            }
            valid
        });
        if plan.is_empty() {
            return;
        }

        // Dispatch in the order returned by the policy.
        for d in &plan {
            let query = self.central_queue[d.query_index];
            let needs_start = {
                let inst = &mut self.cluster.instances_mut()[d.instance_index];
                inst.local_queue.push_back(query);
                inst.serving.is_none()
            };
            self.local_nominal_us[d.instance_index] += nominal_us(
                self.service,
                &self.cluster.instances()[d.instance_index].type_name,
                query.batch_size,
            );
            if needs_start {
                self.start_next(d.instance_index);
            }
        }

        // Remove dispatched queries in one gap-closing sweep: survivors
        // between consecutive dispatched indices are shifted left with block
        // copies, so each element moves at most once (one memmove per gap).
        // Replaces the former sort + per-index `Vec::remove` loop, which was
        // O(dispatches × queue).  Relative order of survivors is preserved.
        let mut removed: Vec<usize> = plan.iter().map(|d| d.query_index).collect();
        removed.sort_unstable();
        let queue = &mut self.central_queue;
        let len = queue.len();
        let mut write = removed[0];
        for (i, &idx) in removed.iter().enumerate() {
            let next = removed.get(i + 1).copied().unwrap_or(len);
            queue.copy_within(idx + 1..next, write);
            write += next - idx - 1;
        }
        queue.truncate(write);
    }
}

/// Runs one simulation of `trace` against `config` on `pool` serving
/// `service`, distributing queries with `scheduler`.
///
/// Convenience wrapper constructing a [`SimEngine`] and running it to
/// completion.
pub fn run_trace(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: &SimulationOptions,
) -> SimReport {
    SimEngine::new(pool, config, service, trace, scheduler, options).run()
}

/// The original event loop, which rebuilds every [`InstanceView`] from
/// scratch on every event and removes dispatched queries with per-index
/// `Vec::remove` calls.
///
/// Preserved as the behavioural reference for [`SimEngine`]: the determinism
/// tests assert the two produce identical records, and the `simulator`
/// Criterion bench measures the incremental engine's speedup against it.
pub fn run_trace_naive(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    options: &SimulationOptions,
) -> SimReport {
    let mut cluster = Cluster::new(pool.clone(), config.clone());
    let mut rng = StdRng::seed_from_u64(options.seed);
    let qos_us = service.qos_us();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for q in &trace.queries {
        heap.push(Reverse(Event {
            time: q.arrival_us,
            seq,
            kind: EventKind::Arrival(*q),
        }));
        seq += 1;
    }

    let mut central_queue: Vec<Query> = Vec::new();
    let mut records: Vec<QueryRecord> = Vec::new();
    let mut last_event: TimeUs = 0;

    // Helper to start the next locally queued query on an idle instance.
    fn start_next(
        cluster: &mut Cluster,
        service: &ServiceSpec,
        rng: &mut StdRng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        instance_index: usize,
        now: TimeUs,
    ) {
        let inst = &mut cluster.instances_mut()[instance_index];
        debug_assert!(inst.serving.is_none(), "instance already serving a query");
        if let Some(query) = inst.local_queue.pop_front() {
            let service_us = service.service_time_us(&inst.type_name, query.batch_size, rng);
            let start_us = now.max(inst.available_from_us);
            inst.serving = Some((query, start_us));
            inst.busy_until_us = start_us + service_us;
            heap.push(Reverse(Event {
                time: inst.busy_until_us,
                seq: *seq,
                kind: EventKind::Completion { instance_index },
            }));
            *seq += 1;
        }
    }

    // Consult the scheduler and apply its dispatch decisions.
    #[allow(clippy::too_many_arguments)]
    fn invoke_scheduler(
        cluster: &mut Cluster,
        service: &ServiceSpec,
        scheduler: &mut dyn Scheduler,
        central_queue: &mut Vec<Query>,
        rng: &mut StdRng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        now: TimeUs,
        qos_us: u64,
    ) {
        if central_queue.is_empty() {
            return;
        }
        let views = build_views_naive(cluster, service, now);
        let ctx = SchedulingContext {
            now_us: now,
            queued: central_queue,
            instances: &views,
            qos_us,
        };
        let mut plan: Vec<Dispatch> = scheduler.schedule(&ctx);

        // Validate: indices in range, each query dispatched at most once, no
        // dispatches to non-accepting instances (mirrors the engine).
        let mut seen = vec![false; central_queue.len()];
        plan.retain(|d| {
            let valid = d.query_index < central_queue.len()
                && d.instance_index < cluster.len()
                && cluster.instances()[d.instance_index].accepts_dispatches()
                && !seen[d.query_index];
            if valid {
                seen[d.query_index] = true;
            }
            valid
        });

        // Dispatch in the order returned by the policy.
        for d in &plan {
            let query = central_queue[d.query_index];
            let needs_start = {
                let inst = &mut cluster.instances_mut()[d.instance_index];
                inst.local_queue.push_back(query);
                inst.serving.is_none()
            };
            if needs_start {
                start_next(cluster, service, rng, heap, seq, d.instance_index, now);
            }
        }

        // Remove dispatched queries from the central queue (descending order
        // so indices stay valid).
        let mut dispatched: Vec<usize> = plan.iter().map(|d| d.query_index).collect();
        dispatched.sort_unstable_by(|a, b| b.cmp(a));
        for idx in dispatched {
            central_queue.remove(idx);
        }
    }

    while let Some(Reverse(event)) = heap.pop() {
        let now = event.time;
        last_event = last_event.max(now);
        match event.kind {
            EventKind::Arrival(query) => {
                central_queue.push(query);
            }
            EventKind::Completion { instance_index } => {
                let (query, start_us, type_index, type_name) = {
                    let inst = &mut cluster.instances_mut()[instance_index];
                    let (query, start_us) = inst
                        .serving
                        .take()
                        .expect("completion event for idle instance");
                    (query, start_us, inst.type_index, inst.type_name.clone())
                };
                records.push(QueryRecord {
                    id: query.id,
                    batch_size: query.batch_size,
                    arrival_us: query.arrival_us,
                    start_us,
                    completion_us: now,
                    instance_index,
                    type_index,
                });
                let service_ms = (now - start_us) as f64 / 1000.0;
                scheduler.on_completion(&type_name, query.batch_size, service_ms);
                // Start the next locally queued query, if any.
                start_next(
                    &mut cluster,
                    service,
                    &mut rng,
                    &mut heap,
                    &mut seq,
                    instance_index,
                    now,
                );
            }
            // The naive replayer never reconfigures, so no Ready events exist.
            EventKind::Ready { .. } => unreachable!("naive path has no provisioning"),
        }
        invoke_scheduler(
            &mut cluster,
            service,
            scheduler,
            &mut central_queue,
            &mut rng,
            &mut heap,
            &mut seq,
            now,
            qos_us,
        );
    }

    // Anything still queued (centrally or locally) never completed.
    let mut unfinished: Vec<UnfinishedQuery> = central_queue
        .iter()
        .map(|q| UnfinishedQuery {
            id: q.id,
            batch_size: q.batch_size,
            arrival_us: q.arrival_us,
        })
        .collect();
    for inst in cluster.instances() {
        for q in &inst.local_queue {
            unfinished.push(UnfinishedQuery {
                id: q.id,
                batch_size: q.batch_size,
                arrival_us: q.arrival_us,
            });
        }
        if let Some((q, _)) = inst.serving {
            unfinished.push(UnfinishedQuery {
                id: q.id,
                batch_size: q.batch_size,
                arrival_us: q.arrival_us,
            });
        }
    }

    let horizon_us = last_event.max(trace.duration_us());
    SimReport {
        scheduler: scheduler.name().to_string(),
        records,
        unfinished,
        offered: trace.len(),
        horizon_us,
        qos_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::InstanceLifecycle;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, mlmodel::ModelKind};
    use kairos_workload::TraceSpec;

    fn setup() -> (PoolSpec, ServiceSpec) {
        (
            PoolSpec::new(ec2::paper_pool()),
            ServiceSpec::new(ModelKind::Wnd, paper_calibration()),
        )
    }

    #[test]
    fn every_offered_query_is_accounted_for() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(100.0, 1.0, 1).generate();
        let config = Config::new(vec![2, 0, 1, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        assert_eq!(report.offered, trace.len());
        assert_eq!(report.completed() + report.unfinished.len(), trace.len());
        assert_eq!(report.scheduler, "fcfs");
    }

    #[test]
    fn completions_never_precede_arrivals_and_service_is_serial() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(200.0, 1.0, 2).generate();
        let config = Config::new(vec![1, 1, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        for r in &report.records {
            assert!(r.start_us >= r.arrival_us);
            assert!(r.completion_us > r.start_us);
        }
        // One query at a time per instance: service intervals on the same
        // instance must not overlap.
        let mut by_instance: std::collections::HashMap<usize, Vec<(TimeUs, TimeUs)>> =
            std::collections::HashMap::new();
        for r in &report.records {
            by_instance
                .entry(r.instance_index)
                .or_default()
                .push((r.start_us, r.completion_us));
        }
        for intervals in by_instance.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping service intervals {w:?}");
            }
        }
    }

    #[test]
    fn light_load_on_gpu_meets_qos() {
        let (pool, service) = setup();
        // 20 QPS against one GPU that serves a mean query in ~7 ms: trivially feasible.
        let trace = TraceSpec::production(20.0, 2.0, 3).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        assert!(
            report.meets_qos(0.01),
            "violations: {}",
            report.violation_fraction()
        );
        assert!(report.unfinished.is_empty());
    }

    #[test]
    fn overload_is_detected_as_violations() {
        let (pool, service) = setup();
        // 2000 QPS against a single GPU is far beyond capacity.
        let trace = TraceSpec::production(2000.0, 1.0, 4).generate();
        let config = Config::new(vec![1, 0, 0, 0]);
        let mut fcfs = FcfsScheduler::new();
        let report = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut fcfs,
            &SimulationOptions::default(),
        );
        assert!(!report.meets_qos(0.05), "overload should violate QoS");
    }

    #[test]
    fn deterministic_given_seed_and_trace() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(150.0, 1.0, 9).generate();
        let config = Config::new(vec![1, 1, 1, 1]);
        let opts = SimulationOptions { seed: 7 };
        let a = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let b = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        assert_eq!(a.records, b.records);
        assert_eq!(a.horizon_us, b.horizon_us);
    }

    /// A policy that dispatches queued queries in a fixed, deliberately
    /// non-monotonic order, to pin down the engine's dispatch semantics.
    struct ReversingScheduler;

    impl Scheduler for ReversingScheduler {
        fn name(&self) -> &'static str {
            "reversing"
        }

        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
            // Wait until the whole burst is visible, then dispatch the newest
            // two queries (in that order) to instance 0, leaving the rest in
            // the central queue.
            if ctx.queued.len() < 5 {
                return Vec::new();
            }
            ctx.queued
                .iter()
                .enumerate()
                .rev()
                .take(2)
                .map(|(query_index, _)| Dispatch {
                    query_index,
                    instance_index: 0,
                })
                .collect()
        }
    }

    #[test]
    fn dispatch_order_is_preserved_by_the_removal_sweep() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        // Five queries arriving together so one scheduling round sees all.
        let queries: Vec<Query> = (0..5).map(|i| Query::new(i, 10 + i as u32, 100)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = ReversingScheduler;
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        // Process the five arrival events.
        for _ in 0..5 {
            assert!(engine.step());
        }
        // The scheduling round saw queries [0,1,2,3,4] and dispatched {4, 3}
        // in that order: 4 entered service first, 3 waits in the local queue.
        let inst = &engine.cluster().instances()[0];
        assert_eq!(
            inst.serving.unwrap().0.id,
            4,
            "first dispatched query must start first"
        );
        let local: Vec<u64> = inst.local_queue.iter().map(|q| q.id).collect();
        assert_eq!(local, vec![3], "second dispatch queues behind: {local:?}");
        // The central queue keeps the remaining queries in arrival order.
        let central: Vec<u64> = engine.central_queue().iter().map(|q| q.id).collect();
        assert_eq!(central, vec![0, 1, 2], "sweep must preserve arrival order");
    }

    /// A policy that dispatches a scattered subset (every other query) so
    /// the gap-closing sweep has interior gaps to close.
    struct AlternatingScheduler;

    impl Scheduler for AlternatingScheduler {
        fn name(&self) -> &'static str {
            "alternating"
        }

        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> Vec<Dispatch> {
            if ctx.queued.len() < 6 {
                return Vec::new();
            }
            (0..ctx.queued.len())
                .step_by(2)
                .map(|query_index| Dispatch {
                    query_index,
                    instance_index: 0,
                })
                .collect()
        }
    }

    #[test]
    fn scattered_dispatches_leave_survivors_in_order() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        let queries: Vec<Query> = (0..6).map(|i| Query::new(i, 10, 100)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = AlternatingScheduler;
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        for _ in 0..6 {
            assert!(engine.step());
        }
        // Queries 0, 2, 4 were dispatched; 1, 3, 5 must survive in order.
        let central: Vec<u64> = engine.central_queue().iter().map(|q| q.id).collect();
        assert_eq!(central, vec![1, 3, 5]);
        let inst = &engine.cluster().instances()[0];
        assert_eq!(inst.serving.unwrap().0.id, 0);
        let local: Vec<u64> = inst.local_queue.iter().map(|q| q.id).collect();
        assert_eq!(local, vec![2, 4]);
    }

    #[test]
    fn added_instance_waits_for_provisioning_before_serving() {
        let (pool, service) = setup();
        // Empty-ish cluster: one GPU, plus a burst that takes it ~220 ms to
        // drain alone (Wnd batch 900 is ~18 ms on a g4dn).
        let config = Config::new(vec![1, 0, 0, 0]);
        let queries: Vec<Query> = (0..12).map(|i| Query::new(i, 900, 1_000)).collect();
        let trace = Trace::from_queries(queries);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        // Process the arrivals, then add a second GPU with a 50 ms delay.
        for _ in 0..12 {
            assert!(engine.step());
        }
        let added = engine.add_instance(0, 50_000);
        assert_eq!(added, 1);
        assert_eq!(
            engine.cluster().instances()[added].available_from_us,
            51_000
        );
        let report = engine.run();
        assert_eq!(report.completed(), 12);
        // Every query served by the added instance started at or after its
        // provisioning boundary.
        for r in report.records.iter().filter(|r| r.instance_index == added) {
            assert!(r.start_us >= 51_000, "start {} before ready", r.start_us);
        }
        // The added instance actually took work off the overloaded GPU.
        assert!(
            report.records.iter().any(|r| r.instance_index == added),
            "added capacity must be used"
        );
    }

    #[test]
    fn retired_instance_drains_gracefully_and_takes_no_new_work() {
        let (pool, service) = setup();
        let config = Config::new(vec![2, 0, 0, 0]);
        // Two bursts: one before retirement, one after.
        let mut queries: Vec<Query> = (0..4).map(|i| Query::new(i, 500, 1_000)).collect();
        queries.extend((4..8).map(|i| Query::new(i, 500, 400_000)));
        let trace = Trace::from_queries(queries);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        // Process the first burst, then retire instance 1 while it is busy.
        for _ in 0..4 {
            assert!(engine.step());
        }
        engine.retire_instance(1);
        assert_eq!(
            engine.cluster().instances()[1].lifecycle,
            InstanceLifecycle::Draining
        );
        let report = engine.run();
        assert_eq!(report.completed(), 8);
        // The retiring instance finished what it had but nothing that arrived
        // after retirement was requested.
        for r in report.records.iter().filter(|r| r.instance_index == 1) {
            assert!(
                r.arrival_us < 400_000,
                "query {} dispatched to a draining instance",
                r.id
            );
        }
    }

    #[test]
    fn retiring_an_idle_instance_is_immediate() {
        let (pool, service) = setup();
        let config = Config::new(vec![2, 0, 0, 0]);
        let trace = Trace::from_queries(vec![Query::new(0, 10, 100)]);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        engine.retire_instance(1);
        assert!(engine.cluster().instances()[1].is_retired());
        let report = engine.run();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.records[0].instance_index, 0);
    }

    /// A hook that scales out on the first arrival and retires the original
    /// instance once the cluster has grown — exercising `run_with_hook`.
    struct ScaleOutHook {
        added: bool,
    }

    impl EngineHook for ScaleOutHook {
        fn on_event(
            &mut self,
            _now_us: TimeUs,
            event: &EngineEvent,
            cluster: &Cluster,
        ) -> Vec<ClusterAction> {
            match event {
                EngineEvent::Arrival { .. } if !self.added => {
                    self.added = true;
                    vec![ClusterAction::AddInstance {
                        type_index: 0,
                        provisioning_delay_us: 10_000,
                    }]
                }
                EngineEvent::InstanceReady { .. } => {
                    assert!(cluster.len() > 1);
                    vec![ClusterAction::RetireInstance { instance_index: 0 }]
                }
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn hook_can_grow_and_shrink_the_cluster_mid_run() {
        let (pool, service) = setup();
        let config = Config::new(vec![1, 0, 0, 0]);
        let trace = TraceSpec::production(100.0, 1.0, 11).generate();
        let offered = trace.len();
        let mut scheduler = FcfsScheduler::new();
        let engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        let mut hook = ScaleOutHook { added: false };
        let report = engine.run_with_hook(&mut hook);
        assert_eq!(report.completed() + report.unfinished.len(), offered);
        // After the hand-over, all late traffic runs on the added instance.
        let last = report.records.iter().max_by_key(|r| r.completion_us);
        assert_eq!(last.unwrap().instance_index, 1);
    }

    #[test]
    fn engine_matches_naive_reference_for_fcfs() {
        let (pool, service) = setup();
        let trace = TraceSpec::production(400.0, 1.0, 21).generate();
        let config = Config::new(vec![1, 1, 2, 0]);
        let opts = SimulationOptions { seed: 3 };
        let fast = run_trace(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        let naive = run_trace_naive(
            &pool,
            &config,
            &service,
            &trace,
            &mut FcfsScheduler::new(),
            &opts,
        );
        assert_eq!(fast.records, naive.records);
        assert_eq!(fast.unfinished, naive.unfinished);
        assert_eq!(fast.horizon_us, naive.horizon_us);
    }

    #[test]
    fn incremental_views_match_recomputed_views_each_step() {
        let (pool, service) = setup();
        // FCFS dispatches to idle instances only, so this exercises the
        // serving-slot accounting; deep-local-queue coverage (and the full
        // 10k-query regression) lives in tests/engine_regression.rs with a
        // queue-building scheduler.
        let trace = TraceSpec::production(600.0, 0.5, 31).generate();
        let config = Config::new(vec![1, 0, 1, 0]);
        let mut scheduler = FcfsScheduler::new();
        let mut engine = SimEngine::new(
            &pool,
            &config,
            &service,
            &trace,
            &mut scheduler,
            &SimulationOptions::default(),
        );
        let mut steps = 0usize;
        while engine.step() {
            let reference = engine.recompute_views();
            assert_eq!(
                engine.views(),
                &reference[..],
                "views diverged at step {steps}"
            );
            steps += 1;
        }
        assert!(
            steps > trace.len(),
            "simulation should process every arrival"
        );
    }
}

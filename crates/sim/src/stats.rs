//! Simulation statistics: per-query records and aggregated QoS / throughput
//! metrics.
//!
//! The paper's central metric is the *allowable throughput*: the largest
//! query rate (QPS) a configuration can sustain without violating the QoS
//! target, defined on the 99th-percentile tail latency (Sec. 3).  The report
//! exposes the building blocks: completion records, tail latencies, violation
//! fractions, and goodput.

use kairos_workload::{ModelId, TimeUs};
use serde::{Deserialize, Serialize};

/// Lifecycle record of one query that finished service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query identifier.
    pub id: u64,
    /// The model the query was served by.
    pub model: ModelId,
    /// Batch size of the query.
    pub batch_size: u32,
    /// Arrival time at the system.
    pub arrival_us: TimeUs,
    /// Time service started on the chosen instance.
    pub start_us: TimeUs,
    /// Time service completed.
    pub completion_us: TimeUs,
    /// Index of the serving instance within the cluster.
    pub instance_index: usize,
    /// Index of the serving instance's type within the pool.
    pub type_index: usize,
}

impl QueryRecord {
    /// End-to-end latency (queueing + service) in microseconds.
    pub fn latency_us(&self) -> TimeUs {
        self.completion_us.saturating_sub(self.arrival_us)
    }

    /// Time spent waiting before service started.
    pub fn wait_us(&self) -> TimeUs {
        self.start_us.saturating_sub(self.arrival_us)
    }

    /// Whether the query met the QoS target.
    pub fn within_qos(&self, qos_us: u64) -> bool {
        self.latency_us() <= qos_us
    }
}

/// A query that arrived but never completed before the simulation horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnfinishedQuery {
    /// Query identifier.
    pub id: u64,
    /// The model the query targeted.
    pub model: ModelId,
    /// Batch size of the query.
    pub batch_size: u32,
    /// Arrival time at the system.
    pub arrival_us: TimeUs,
}

/// Counters of the flexible service layer (fair throughput sharing + dynamic
/// batching), the serverless container lane (cold starts, parked time), and
/// the calendar's lazy-deletion bookkeeping.  All zeros on the legacy scalar
/// service path except the `calendar_scheduled` count, which every engine
/// run produces.  Every field sums across shard merges: flex and serverless
/// state is per-instance and instances belong to exactly one model lane, so
/// the sharded engine's per-lane counters partition the combined run's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Timed events ever pushed onto the engine's calendar.
    pub calendar_scheduled: u64,
    /// Calendar events invalidated in place by lazy deletion (sharing
    /// reschedules, batch-timeout preemptions, instance kills).
    pub calendar_cancelled: u64,
    /// Stale calendar events popped and skipped.  At most
    /// `calendar_cancelled` — the engine regression tests assert this, which
    /// catches tombstone leaks (events cancelled twice, or skips that never
    /// had a matching cancellation).
    pub calendar_stale_popped: u64,
    /// Batches fired by the dynamic batcher (singleton batches included).
    pub batches_fired: u64,
    /// Queries that went through the batcher (members of fired batches).
    pub batched_queries: u64,
    /// Sum of fused batch sizes (member batch sizes added up) over fired
    /// batches; `batch_fill_sum / batches_fired` is the mean occupancy.
    pub batch_fill_sum: u64,
    /// Total time members spent in forming windows before their batch
    /// fired, in microseconds.
    pub batch_wait_us_sum: u64,
    /// Dispatches that found their target container parked and paid a cold
    /// start (serverless lane only).
    pub cold_starts: u64,
    /// Total cold-start latency (container init + model load) paid before
    /// service across all cold dispatches, in microseconds.
    pub cold_start_wait_us_sum: u64,
    /// Total time instances spent parked — present in the cluster but
    /// unbilled — in microseconds.  The billing integral excludes exactly
    /// these intervals.
    pub parked_us_sum: u64,
}

impl ServiceStats {
    /// Field-wise sum (the shard-merge combination).
    pub fn merged(self, other: ServiceStats) -> ServiceStats {
        ServiceStats {
            calendar_scheduled: self.calendar_scheduled + other.calendar_scheduled,
            calendar_cancelled: self.calendar_cancelled + other.calendar_cancelled,
            calendar_stale_popped: self.calendar_stale_popped + other.calendar_stale_popped,
            batches_fired: self.batches_fired + other.batches_fired,
            batched_queries: self.batched_queries + other.batched_queries,
            batch_fill_sum: self.batch_fill_sum + other.batch_fill_sum,
            batch_wait_us_sum: self.batch_wait_us_sum + other.batch_wait_us_sum,
            cold_starts: self.cold_starts + other.cold_starts,
            cold_start_wait_us_sum: self.cold_start_wait_us_sum + other.cold_start_wait_us_sum,
            parked_us_sum: self.parked_us_sum + other.parked_us_sum,
        }
    }

    /// Mean cold-start latency paid per cold dispatch, in microseconds (0
    /// when nothing ever started cold).
    pub fn mean_cold_start_wait_us(&self) -> f64 {
        if self.cold_starts == 0 {
            return 0.0;
        }
        self.cold_start_wait_us_sum as f64 / self.cold_starts as f64
    }

    /// Mean fused batch size over fired batches (0 when nothing batched).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches_fired == 0 {
            return 0.0;
        }
        self.batch_fill_sum as f64 / self.batches_fired as f64
    }

    /// Mean time a batched query waited in its forming window, in
    /// microseconds (0 when nothing batched).
    pub fn mean_batch_wait_us(&self) -> f64 {
        if self.batched_queries == 0 {
            return 0.0;
        }
        self.batch_wait_us_sum as f64 / self.batched_queries as f64
    }
}

/// One zone outage as observed by the engine: the domain that went down,
/// the window boundaries, and what the outage cost — instances force-killed
/// at the notice deadline and the queries those kills displaced back to the
/// central queue.  The per-domain recovery delay derives from the report via
/// [`SimReport::time_to_recover`] anchored at [`OutageRecord::start_us`]
/// (see [`SimReport::outage_recoveries`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageRecord {
    /// Label of the failed domain (`region/zone`).
    pub domain: String,
    /// Virtual time the outage began (the notice instant).
    pub start_us: TimeUs,
    /// Virtual time the domain came back.
    pub end_us: TimeUs,
    /// Instances force-killed at the outage's notice deadline.
    pub killed_instances: usize,
    /// Queries the kills displaced back to the central queue (in-flight
    /// plus locally queued at kill time).
    pub lost_queries: usize,
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the scheduling policy that produced this run.
    pub scheduler: String,
    /// Per-query completion records.
    pub records: Vec<QueryRecord>,
    /// Queries that never completed before the horizon.
    pub unfinished: Vec<UnfinishedQuery>,
    /// Total number of queries offered to the system.
    pub offered: usize,
    /// Virtual time span of the run (last event time), in microseconds.
    pub horizon_us: TimeUs,
    /// QoS target of the primary ([`ModelId::DEFAULT`]) model, in
    /// microseconds.  Single-model runs read this; per-model accounting
    /// resolves through [`SimReport::qos_for`].
    pub qos_us: u64,
    /// Per-model QoS targets in microseconds, indexed by [`ModelId`].
    /// `[qos_us]` for single-model runs; may be left empty by hand-built
    /// reports, in which case every model falls back to [`Self::qos_us`].
    pub qos_by_model: Vec<u64>,
    /// Time-integrated dollars actually billed over the run: each instance
    /// is charged its offering's (possibly time-varying) price from the
    /// moment it was requested until it terminally left service (or the
    /// horizon, if still alive).  With constant prices this equals
    /// `hourly cost × hours`, bit-for-bit per instance.  Equal to the
    /// left-fold sum of [`Self::billed_by_model`] when that table is
    /// populated.
    pub billed_dollars: f64,
    /// Per-model partial sums of [`Self::billed_dollars`], indexed by
    /// [`ModelId`]: slot `m` accumulates the bills of model-`m`-bound
    /// instances in settlement order.  Keeping the per-model partials (and
    /// deriving the total as their left fold) is what makes billing
    /// **order-independent across shards**: shards bill disjoint model
    /// slots, so [`Self::merge`] adds exact zeros into every foreign slot
    /// and the merged fold reproduces the single-engine total bit-for-bit.
    /// May be empty on hand-built reports, in which case the whole bill is
    /// attributed to the primary model.
    pub billed_by_model: Vec<f64>,
    /// Per-model sums over completed queries of the accuracy of the variant
    /// serving the query's model **at completion time**, indexed by
    /// [`ModelId`] — the delivered-accuracy numerator of the variant
    /// subsystem (see [`kairos_models::variant`]).  Reference-only runs
    /// accrue each model's published accuracy per completion; runs that
    /// switch variants mid-flight accrue the accuracy active when the query
    /// completed.  Same disjoint-slot representation as
    /// [`Self::billed_by_model`], with the same exact-merge property; may be
    /// empty on hand-built reports, in which case every completion counts as
    /// full accuracy (1.0), attributed to the primary model.
    pub accuracy_sum_by_model: Vec<f64>,
    /// Number of engine events processed to produce this report (arrivals,
    /// completions, provisioning readies, market steps, preemption kills).
    /// The numerator of the engine's events/sec scaling metric; shard
    /// merges sum it.
    pub events_processed: u64,
    /// Market preemption notices delivered during the run.
    pub preemption_notices: usize,
    /// Instances forcibly reclaimed by the market.
    pub preempted_instances: usize,
    /// Queries requeued to the central queue by preemption kills (a query
    /// requeued by two successive kills counts twice).  Outage kills ride
    /// the same counter (their per-outage share is in [`Self::outages`]).
    pub requeued_queries: usize,
    /// Purchase attempts rejected by an active zone outage or capacity
    /// shortage in the target domain (see
    /// [`SimEngine::try_add_instance_for`](crate::SimEngine::try_add_instance_for)).
    pub rejected_purchases: usize,
    /// Straggler onsets applied to a live instance (throughput scaled down
    /// mid-run).
    pub straggler_onsets: usize,
    /// One record per zone outage the run went through, in onset order.
    /// Shard merges concatenate and re-sort by `(start_us, domain)`.
    pub outages: Vec<OutageRecord>,
    /// Flexible-service-layer counters: calendar lazy-deletion tombstones
    /// and dynamic-batcher occupancy/latency metrics.  Summed field-wise by
    /// shard merges.
    pub service: ServiceStats,
}

/// One model's slice of a [`SimReport`]: the per-model accounting that sums
/// exactly to the aggregate report (see [`SimReport::per_model`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// The model this row describes.
    pub model: ModelId,
    /// Queries of this model offered to the system.
    pub offered: usize,
    /// Queries of this model that completed.
    pub completed: usize,
    /// Queries of this model that never completed before the horizon.
    pub unfinished: usize,
    /// QoS violations attributed to this model (late completions plus stale
    /// unfinished queries, judged against *this model's* QoS target).
    pub violations: usize,
    /// 99th-percentile end-to-end latency of this model's completions, in
    /// microseconds (0 when nothing completed).
    pub p99_latency_us: TimeUs,
    /// Completed queries of this model per second of simulated time.
    pub throughput_qps: f64,
    /// Mean delivered accuracy over this model's completions — the
    /// per-completion accuracy of the serving variant, averaged (0 when
    /// nothing completed).
    pub mean_accuracy: f64,
}

impl ModelReport {
    /// Fraction of this model's offered queries that violated its QoS.
    pub fn violation_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.violations as f64 / self.offered as f64
    }
}

/// Merges two record lists under a total key.  Engine-produced reports are
/// already canonically sorted, so the common case is a linear two-way merge
/// (the key is total, so the merged sequence is exactly what re-sorting the
/// concatenation would produce); unsorted hand-built inputs fall back to
/// concatenate-and-sort.  This keeps a fold over many large shard reports
/// O(total) per step instead of re-sorting the accumulated prefix.
fn merge_by_key<T, K: Ord>(mut left: Vec<T>, mut right: Vec<T>, key: fn(&T) -> K) -> Vec<T> {
    let sorted = |v: &[T]| v.windows(2).all(|w| key(&w[0]) <= key(&w[1]));
    if !sorted(&left) || !sorted(&right) {
        left.append(&mut right);
        left.sort_unstable_by_key(key);
        return left;
    }
    if left.is_empty() {
        return right;
    }
    if right.is_empty() || key(left.last().expect("non-empty")) <= key(&right[0]) {
        left.append(&mut right);
        return left;
    }
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut l = left.into_iter().peekable();
    let mut r = right.into_iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (Some(a), Some(b)) => {
                if key(a) <= key(b) {
                    out.push(l.next().expect("peeked"));
                } else {
                    out.push(r.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(l);
                break;
            }
            (None, _) => {
                out.extend(r);
                break;
            }
        }
    }
    out
}

/// K-way linear merge of sorted runs under a total key: one output pass over
/// the concatenation instead of the repeated prefix copies a pairwise fold
/// pays.  Key ties break toward the earliest input, exactly as a left fold
/// of [`merge_by_key`] orders them, so the output is bit-identical to the
/// fold.  Callers guarantee every input is sorted (checked by
/// [`SimReport::merge_many`], which falls back to the fold otherwise).
fn kway_merge_by_key<T: Copy, K: Ord>(inputs: &[Vec<T>], key: fn(&T) -> K) -> Vec<T> {
    let total = inputs.iter().map(Vec::len).sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; inputs.len()];
    // Cache each input's head key: popping advances exactly one cursor, so
    // only that input's key needs re-deriving — the scan below compares
    // cached keys instead of rebuilding k of them per output element.
    let mut heads: Vec<Option<K>> = inputs.iter().map(|input| input.first().map(key)).collect();
    while out.len() < total {
        let mut best: Option<(usize, &K)> = None;
        for (s, head) in heads.iter().enumerate() {
            if let Some(k) = head {
                if best.as_ref().is_none_or(|&(_, bk)| k < bk) {
                    best = Some((s, k));
                }
            }
        }
        let (s, _) = best.expect("out.len() < total implies a live cursor");
        out.push(inputs[s][cursors[s]]);
        cursors[s] += 1;
        heads[s] = inputs[s].get(cursors[s]).map(key);
    }
    out
}

/// Nearest-rank percentile over a **sorted** latency slice: the smallest
/// latency such that at least `percentile` percent of entries are at or
/// below it (0 for an empty slice).  The single percentile convention used
/// by both the aggregate and the per-model report paths.
fn nearest_rank_us(sorted: &[TimeUs], percentile: f64) -> TimeUs {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    let rank = ((percentile / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[rank]
}

impl SimReport {
    /// Number of completed queries.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// QoS target of a model in microseconds (array index; falls back to
    /// the primary [`Self::qos_us`] when the table does not cover the
    /// model).
    #[inline]
    pub fn qos_for(&self, model: ModelId) -> u64 {
        self.qos_by_model
            .get(model.index())
            .copied()
            .unwrap_or(self.qos_us)
    }

    /// One past the largest model index appearing in the report (QoS table,
    /// records or unfinished queries).
    pub fn num_models(&self) -> usize {
        self.qos_by_model
            .len()
            .max(
                self.records
                    .iter()
                    .map(|r| r.model.index() + 1)
                    .max()
                    .unwrap_or(0),
            )
            .max(
                self.unfinished
                    .iter()
                    .map(|u| u.model.index() + 1)
                    .max()
                    .unwrap_or(0),
            )
            .max(1)
    }

    /// Per-model breakdown of the run, indexed by [`ModelId`] over
    /// `0..self.num_models()`.  The `offered`, `completed`, `unfinished`
    /// and `violations` columns each sum **exactly** to the corresponding
    /// aggregate ([`Self::offered`] via completed + unfinished,
    /// [`Self::completed`], [`Self::violations`]) — this invariant is
    /// property-tested in `tests/proptest_multimodel.rs`.
    pub fn per_model(&self) -> Vec<ModelReport> {
        let n = self.num_models();
        let mut offered = vec![0usize; n];
        let mut completed = vec![0usize; n];
        let mut unfinished = vec![0usize; n];
        let mut violations = vec![0usize; n];
        let mut latencies: Vec<Vec<TimeUs>> = vec![Vec::new(); n];
        for r in &self.records {
            let m = r.model.index();
            offered[m] += 1;
            completed[m] += 1;
            latencies[m].push(r.latency_us());
            if !r.within_qos(self.qos_for(r.model)) {
                violations[m] += 1;
            }
        }
        for u in &self.unfinished {
            let m = u.model.index();
            offered[m] += 1;
            unfinished[m] += 1;
            if self.horizon_us.saturating_sub(u.arrival_us) > self.qos_for(u.model) {
                violations[m] += 1;
            }
        }
        let horizon_s = self.horizon_us as f64 / 1e6;
        let accuracy = self.accuracy_table();
        (0..n)
            .map(|m| {
                latencies[m].sort_unstable();
                let p99 = nearest_rank_us(&latencies[m], 99.0);
                ModelReport {
                    model: ModelId::new(m),
                    offered: offered[m],
                    completed: completed[m],
                    unfinished: unfinished[m],
                    violations: violations[m],
                    p99_latency_us: p99,
                    throughput_qps: if self.horizon_us == 0 {
                        0.0
                    } else {
                        completed[m] as f64 / horizon_s
                    },
                    mean_accuracy: if completed[m] == 0 {
                        0.0
                    } else {
                        accuracy.get(m).copied().unwrap_or(0.0) / completed[m] as f64
                    },
                }
            })
            .collect()
    }

    /// Time-weighted mean dollars per hour over the run: the billed total
    /// spread over the horizon.  This is the cost axis of the market
    /// benchmarks (`count × list price` overstates spend whenever the run
    /// rode cheaper spot capacity or scaled in mid-run).
    pub fn billed_cost_per_hour(&self) -> f64 {
        if self.horizon_us == 0 {
            return 0.0;
        }
        self.billed_dollars / (self.horizon_us as f64 / 3.6e9)
    }

    /// Raw throughput: completed queries per second of simulated time.
    pub fn throughput_qps(&self) -> f64 {
        if self.horizon_us == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.horizon_us as f64 / 1e6)
    }

    /// Goodput: queries completed *within QoS* per second of simulated time —
    /// the quantity the paper calls allowable throughput once the offered load
    /// is at the QoS-feasibility boundary.
    pub fn goodput_qps(&self) -> f64 {
        if self.horizon_us == 0 {
            return 0.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.within_qos(self.qos_for(r.model)))
            .count();
        ok as f64 / (self.horizon_us as f64 / 1e6)
    }

    /// Number of offered queries that violated QoS: completions beyond the
    /// target plus unfinished queries already in the system longer than the
    /// target at the horizon (so an overloaded system cannot hide violations
    /// in its backlog).
    ///
    /// The late-completion term is monotone over a run — once a completion
    /// is late it stays late, and on-time completions can never turn into
    /// violations — which is the bound the engine's early-exit capacity
    /// probe ([`kairos_sim::SimEngine::run_qos_probe`](crate::SimEngine::run_qos_probe))
    /// relies on.
    pub fn violations(&self) -> usize {
        let late_completed = self
            .records
            .iter()
            .filter(|r| !r.within_qos(self.qos_for(r.model)))
            .count();
        let late_unfinished = self
            .unfinished
            .iter()
            .filter(|u| self.horizon_us.saturating_sub(u.arrival_us) > self.qos_for(u.model))
            .count();
        late_completed + late_unfinished
    }

    /// Fraction of offered queries that violated QoS (see
    /// [`Self::violations`]).
    pub fn violation_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.violations() as f64 / self.offered as f64
    }

    /// Whether the run satisfies the QoS target at the given tail tolerance
    /// (e.g. 0.01 for a 99th-percentile target).
    pub fn meets_qos(&self, tolerance: f64) -> bool {
        self.violation_fraction() <= tolerance
    }

    /// Latency at the given percentile (0–100) over completed queries, in
    /// microseconds.  Returns 0 when nothing completed.
    pub fn latency_percentile_us(&self, percentile: f64) -> TimeUs {
        assert!(
            (0.0..=100.0).contains(&percentile),
            "percentile out of range"
        );
        let mut latencies: Vec<TimeUs> = self.records.iter().map(|r| r.latency_us()).collect();
        latencies.sort_unstable();
        nearest_rank_us(&latencies, percentile)
    }

    /// 99th-percentile latency in microseconds (the paper's QoS metric).
    pub fn p99_latency_us(&self) -> TimeUs {
        self.latency_percentile_us(99.0)
    }

    /// Mean end-to-end latency in milliseconds over completed queries.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.latency_us() as f64)
            .sum::<f64>()
            / self.records.len() as f64
            / 1000.0
    }

    /// Windowed QoS-violation rate over virtual time, **by arrival**: bucket
    /// `i` covers arrivals in `[i * bucket_us, (i+1) * bucket_us)` and holds
    /// the fraction of them that violated QoS — completed too late, or never
    /// completed despite being in the system longer than the target (empty
    /// buckets report 0).  Attributing violations to the arrival instant
    /// answers the adaptation question "how were queries *offered at time t*
    /// served?": a load shift shows up as a spike, recovery as its decay,
    /// and stragglers from the transient do not smear into later buckets.
    pub fn violation_timeline(&self, bucket_us: TimeUs) -> Vec<(TimeUs, f64)> {
        assert!(bucket_us > 0, "bucket width must be positive");
        let buckets = (self.horizon_us / bucket_us + 1) as usize;
        let mut late = vec![0usize; buckets];
        let mut total = vec![0usize; buckets];
        for r in &self.records {
            let b = (r.arrival_us / bucket_us) as usize;
            if b < buckets {
                total[b] += 1;
                if !r.within_qos(self.qos_for(r.model)) {
                    late[b] += 1;
                }
            }
        }
        for u in &self.unfinished {
            let b = (u.arrival_us / bucket_us) as usize;
            if b < buckets {
                total[b] += 1;
                if self.horizon_us.saturating_sub(u.arrival_us) > self.qos_for(u.model) {
                    late[b] += 1;
                }
            }
        }
        (0..buckets)
            .map(|b| {
                let rate = if total[b] == 0 {
                    0.0
                } else {
                    late[b] as f64 / total[b] as f64
                };
                (b as TimeUs * bucket_us, rate)
            })
            .collect()
    }

    /// Time the system needed to restore QoS after a disruption at
    /// `boundary_us`: the smallest `t >= boundary_us` such that every bucket
    /// of the [violation timeline](Self::violation_timeline) from `t` through
    /// the last arrival stays at or below `tolerance`.  Buckets after the
    /// last arrival carry no evidence and are ignored — a run cannot
    /// "recover" into silence.  Returns the recovery delay `t - boundary_us`,
    /// or `None` if the system never stabilizes within the run.
    pub fn time_to_recover(
        &self,
        boundary_us: TimeUs,
        bucket_us: TimeUs,
        tolerance: f64,
    ) -> Option<TimeUs> {
        let last_arrival = self
            .records
            .iter()
            .map(|r| r.arrival_us)
            .chain(self.unfinished.iter().map(|u| u.arrival_us))
            .max()?;
        let timeline = self.violation_timeline(bucket_us);
        let mut recovered_from: Option<TimeUs> = None;
        for &(start, rate) in timeline
            .iter()
            .filter(|(s, _)| *s >= boundary_us && *s <= last_arrival)
        {
            if rate <= tolerance {
                recovered_from.get_or_insert(start);
            } else {
                recovered_from = None;
            }
        }
        recovered_from.map(|t| t - boundary_us)
    }

    /// Per-domain recovery delays: for each [`OutageRecord`] of the run, the
    /// [`Self::time_to_recover`] measured from the outage's onset (`None`
    /// when QoS never restabilizes within the run).  This is the
    /// time-to-recover axis of the `fig_outage` benchmark.
    pub fn outage_recoveries(
        &self,
        bucket_us: TimeUs,
        tolerance: f64,
    ) -> Vec<(String, Option<TimeUs>)> {
        self.outages
            .iter()
            .map(|o| {
                (
                    o.domain.clone(),
                    self.time_to_recover(o.start_us, bucket_us, tolerance),
                )
            })
            .collect()
    }

    /// Number of completed queries served by each instance-type index.
    pub fn per_type_completions(&self, num_types: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_types];
        for r in &self.records {
            if r.type_index < num_types {
                counts[r.type_index] += 1;
            }
        }
        counts
    }

    /// Engine events processed per wall-clock second: the scaling metric of
    /// the sharded engine (`fig_scale`, `bench_gate`).  Wall time is a
    /// measurement of the replay, not of the simulated system, so it lives
    /// outside the report — passing it in keeps reports bit-identical
    /// across thread counts.  Returns 0 for a non-positive wall time.
    pub fn events_per_sec(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            return 0.0;
        }
        self.events_processed as f64 / wall_seconds
    }

    /// The per-model billing table, falling back to attributing the whole
    /// bill to the primary model when [`Self::billed_by_model`] was left
    /// empty (hand-built reports).
    fn billed_table(&self) -> Vec<f64> {
        if self.billed_by_model.is_empty() {
            vec![self.billed_dollars]
        } else {
            self.billed_by_model.clone()
        }
    }

    /// The per-model delivered-accuracy sums, falling back to counting every
    /// completion as full accuracy attributed to the primary model when
    /// [`Self::accuracy_sum_by_model`] was left empty (hand-built reports).
    fn accuracy_table(&self) -> Vec<f64> {
        if self.accuracy_sum_by_model.is_empty() {
            vec![self.completed() as f64]
        } else {
            self.accuracy_sum_by_model.clone()
        }
    }

    /// Mean delivered accuracy over all completed queries: the
    /// per-completion accuracy of the serving variant, averaged (0 when
    /// nothing completed).  A reference-only single-model run reports the
    /// model's published accuracy exactly.
    pub fn delivered_accuracy(&self) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        let sum = self.accuracy_table().iter().fold(0.0, |acc, &a| acc + a);
        sum / self.completed() as f64
    }

    /// The canonical total order [`Self::merge`] (and the multi-model
    /// engine's report finalization) sorts completion records by.  Query
    /// ids are unique within a run, so the key is total and the sorted
    /// sequence is independent of shard order and thread count.
    pub(crate) fn record_key(r: &QueryRecord) -> (TimeUs, TimeUs, u64) {
        (r.completion_us, r.arrival_us, r.id)
    }

    /// The canonical total order for unfinished queries (see
    /// [`Self::record_key`]).
    pub(crate) fn unfinished_key(u: &UnfinishedQuery) -> (TimeUs, u64) {
        (u.arrival_us, u.id)
    }

    /// Merges two shard reports into the report of the combined run.  The
    /// merge is **commutative and associative** over any shard order —
    /// every field either sums (counters), max-merges (horizons, QoS
    /// tables), sorted-multiset-merges under a total key (records,
    /// unfinished, scheduler names), or element-wise adds disjoint
    /// per-model partials (billing) — so a fold over per-model-lane shard
    /// reports is bit-identical regardless of thread count or fold shape.
    /// This is the contract the sharded engine's proptests pin down.
    ///
    /// Billing associativity holds exactly when shards bill disjoint model
    /// slots (the per-model-lane shard boundary guarantees it: adding an
    /// exact `0.0` into a non-negative slot is the f64 identity); merging
    /// hand-built reports that bill the *same* slot is still deterministic
    /// per fold shape but subject to ordinary f64 rounding.
    pub fn merge(mut self, mut other: SimReport) -> SimReport {
        // Scheduler name: equal names collapse, different names become the
        // sorted '+'-joined union of their parts.
        let scheduler = if self.scheduler == other.scheduler {
            std::mem::take(&mut self.scheduler)
        } else {
            let mut parts: Vec<&str> = self
                .scheduler
                .split('+')
                .chain(other.scheduler.split('+'))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            parts.join("+")
        };

        // Capture the accuracy tables before the record lists are taken:
        // the empty-table fallback counts completions.
        let self_accuracy = self.accuracy_table();
        let other_accuracy = other.accuracy_table();

        let records = merge_by_key(
            std::mem::take(&mut self.records),
            std::mem::take(&mut other.records),
            Self::record_key,
        );
        let unfinished = merge_by_key(
            std::mem::take(&mut self.unfinished),
            std::mem::take(&mut other.unfinished),
            Self::unfinished_key,
        );

        // Per-model QoS tables max-merge, extending to the longer table;
        // per-model-lane shards carry identical full tables, so this is a
        // no-op there.
        let mut qos_by_model = std::mem::take(&mut self.qos_by_model);
        if qos_by_model.len() < other.qos_by_model.len() {
            qos_by_model.resize(other.qos_by_model.len(), 0);
        }
        for (slot, &q) in qos_by_model.iter_mut().zip(&other.qos_by_model) {
            *slot = (*slot).max(q);
        }

        // Billing: element-wise sum of the per-model partials, total
        // re-derived as their left fold.
        let mut billed_by_model = self.billed_table();
        let other_billed = other.billed_table();
        if billed_by_model.len() < other_billed.len() {
            billed_by_model.resize(other_billed.len(), 0.0);
        }
        for (slot, &b) in billed_by_model.iter_mut().zip(&other_billed) {
            *slot += b;
        }
        let billed_dollars = billed_by_model.iter().fold(0.0, |acc, &b| acc + b);

        // Delivered accuracy merges exactly like billing: element-wise sum
        // of disjoint per-model partials.
        let mut accuracy_sum_by_model = self_accuracy;
        if accuracy_sum_by_model.len() < other_accuracy.len() {
            accuracy_sum_by_model.resize(other_accuracy.len(), 0.0);
        }
        for (slot, &a) in accuracy_sum_by_model.iter_mut().zip(&other_accuracy) {
            *slot += a;
        }

        // Outage records concatenate and re-sort under a total-enough key:
        // a domain can only fail once per instant, so (start, domain) orders
        // shard contributions independently of merge order.
        let mut outages = std::mem::take(&mut self.outages);
        outages.append(&mut other.outages);
        outages.sort_by(|a, b| (a.start_us, &a.domain).cmp(&(b.start_us, &b.domain)));

        SimReport {
            scheduler,
            records,
            unfinished,
            offered: self.offered + other.offered,
            horizon_us: self.horizon_us.max(other.horizon_us),
            qos_us: self.qos_us.max(other.qos_us),
            qos_by_model,
            billed_dollars,
            billed_by_model,
            accuracy_sum_by_model,
            events_processed: self.events_processed + other.events_processed,
            preemption_notices: self.preemption_notices + other.preemption_notices,
            preempted_instances: self.preempted_instances + other.preempted_instances,
            requeued_queries: self.requeued_queries + other.requeued_queries,
            rejected_purchases: self.rejected_purchases + other.rejected_purchases,
            straggler_onsets: self.straggler_onsets + other.straggler_onsets,
            outages,
            service: self.service.merged(other.service),
        }
    }

    /// Merges any number of shard reports in one pass, **bit-identical** to
    /// the left fold `r0.merge(r1).merge(r2)…` over the same order.  The
    /// fold re-walks the accumulated prefix at every step — O(shards ×
    /// records) copies on large fleets — while this k-way merge writes each
    /// record exactly once.  Billing partials accumulate in input order
    /// (slot-wise, exactly as the fold adds them) and the total re-derives
    /// as the final table's left fold, so f64 bit-identity is preserved.
    /// Returns `None` on an empty iterator.  Inputs whose records or
    /// unfinished lists are not canonically sorted fall back to the pairwise
    /// fold (which sorts), keeping the equivalence unconditional.
    pub fn merge_many(reports: impl IntoIterator<Item = SimReport>) -> Option<SimReport> {
        let mut reports: Vec<SimReport> = reports.into_iter().collect();
        if reports.len() < 2 {
            return reports.pop();
        }
        let sorted = |r: &SimReport| {
            r.records
                .windows(2)
                .all(|w| Self::record_key(&w[0]) <= Self::record_key(&w[1]))
                && r.unfinished
                    .windows(2)
                    .all(|w| Self::unfinished_key(&w[0]) <= Self::unfinished_key(&w[1]))
        };
        if !reports.iter().all(sorted) {
            let mut iter = reports.drain(..);
            let first = iter.next().expect("len checked above");
            return Some(iter.fold(first, SimReport::merge));
        }

        // Scheduler name: all-equal collapses, otherwise the sorted
        // '+'-joined union of every report's parts (the fold's fixpoint).
        let scheduler = if reports[1..]
            .iter()
            .all(|r| r.scheduler == reports[0].scheduler)
        {
            reports[0].scheduler.clone()
        } else {
            let mut parts: Vec<&str> = reports
                .iter()
                .flat_map(|r| r.scheduler.split('+'))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            parts.join("+")
        };

        // Capture the accuracy tables before the record lists are taken:
        // the empty-table fallback counts completions.
        let accuracy_tables: Vec<Vec<f64>> = reports.iter().map(|r| r.accuracy_table()).collect();

        let record_runs: Vec<Vec<QueryRecord>> = reports
            .iter_mut()
            .map(|r| std::mem::take(&mut r.records))
            .collect();
        let unfinished_runs: Vec<Vec<UnfinishedQuery>> = reports
            .iter_mut()
            .map(|r| std::mem::take(&mut r.unfinished))
            .collect();
        let records = kway_merge_by_key(&record_runs, Self::record_key);
        let unfinished = kway_merge_by_key(&unfinished_runs, Self::unfinished_key);

        let mut qos_by_model: Vec<u64> = Vec::new();
        let mut billed_by_model: Vec<f64> = reports[0].billed_table();
        for (i, r) in reports.iter().enumerate() {
            if qos_by_model.len() < r.qos_by_model.len() {
                qos_by_model.resize(r.qos_by_model.len(), 0);
            }
            for (slot, &q) in qos_by_model.iter_mut().zip(&r.qos_by_model) {
                *slot = (*slot).max(q);
            }
            if i > 0 {
                let table = r.billed_table();
                if billed_by_model.len() < table.len() {
                    billed_by_model.resize(table.len(), 0.0);
                }
                for (slot, &b) in billed_by_model.iter_mut().zip(&table) {
                    *slot += b;
                }
            }
        }
        let billed_dollars = billed_by_model.iter().fold(0.0, |acc, &b| acc + b);

        // Accuracy partials accumulate slot-wise in input order, exactly as
        // the pairwise fold adds them.
        let mut accuracy_sum_by_model: Vec<f64> = accuracy_tables[0].clone();
        for table in &accuracy_tables[1..] {
            if accuracy_sum_by_model.len() < table.len() {
                accuracy_sum_by_model.resize(table.len(), 0.0);
            }
            for (slot, &a) in accuracy_sum_by_model.iter_mut().zip(table) {
                *slot += a;
            }
        }

        let mut outages: Vec<OutageRecord> = reports
            .iter_mut()
            .flat_map(|r| std::mem::take(&mut r.outages))
            .collect();
        outages.sort_by(|a, b| (a.start_us, &a.domain).cmp(&(b.start_us, &b.domain)));

        Some(SimReport {
            scheduler,
            records,
            unfinished,
            offered: reports.iter().map(|r| r.offered).sum(),
            horizon_us: reports
                .iter()
                .map(|r| r.horizon_us)
                .max()
                .expect("non-empty"),
            qos_us: reports.iter().map(|r| r.qos_us).max().expect("non-empty"),
            qos_by_model,
            billed_dollars,
            billed_by_model,
            accuracy_sum_by_model,
            events_processed: reports.iter().map(|r| r.events_processed).sum(),
            preemption_notices: reports.iter().map(|r| r.preemption_notices).sum(),
            preempted_instances: reports.iter().map(|r| r.preempted_instances).sum(),
            requeued_queries: reports.iter().map(|r| r.requeued_queries).sum(),
            rejected_purchases: reports.iter().map(|r| r.rejected_purchases).sum(),
            straggler_onsets: reports.iter().map(|r| r.straggler_onsets).sum(),
            outages,
            service: reports
                .iter()
                .fold(ServiceStats::default(), |acc, r| acc.merged(r.service)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, arrival: TimeUs, start: TimeUs, completion: TimeUs) -> QueryRecord {
        QueryRecord {
            id,
            model: ModelId::DEFAULT,
            batch_size: 10,
            arrival_us: arrival,
            start_us: start,
            completion_us: completion,
            instance_index: 0,
            type_index: 0,
        }
    }

    fn report(records: Vec<QueryRecord>, unfinished: Vec<UnfinishedQuery>, qos: u64) -> SimReport {
        let offered = records.len() + unfinished.len();
        let completed = records.len();
        SimReport {
            scheduler: "test".into(),
            records,
            unfinished,
            offered,
            horizon_us: 1_000_000,
            qos_us: qos,
            qos_by_model: vec![qos],
            billed_dollars: 0.0,
            billed_by_model: vec![0.0],
            accuracy_sum_by_model: vec![completed as f64],
            events_processed: 0,
            preemption_notices: 0,
            preempted_instances: 0,
            requeued_queries: 0,
            rejected_purchases: 0,
            straggler_onsets: 0,
            outages: vec![],
            service: ServiceStats::default(),
        }
    }

    #[test]
    fn record_latency_and_wait() {
        let r = record(1, 100, 400, 900);
        assert_eq!(r.latency_us(), 800);
        assert_eq!(r.wait_us(), 300);
        assert!(r.within_qos(800));
        assert!(!r.within_qos(799));
    }

    #[test]
    fn throughput_and_goodput() {
        let rep = report(
            vec![record(1, 0, 0, 100), record(2, 0, 0, 200_000)],
            vec![],
            10_000,
        );
        assert!((rep.throughput_qps() - 2.0).abs() < 1e-9);
        // Only the first record is within the 10 ms QoS.
        assert!((rep.goodput_qps() - 1.0).abs() < 1e-9);
        assert_eq!(rep.violation_fraction(), 0.5);
        assert!(!rep.meets_qos(0.01));
        assert!(rep.meets_qos(0.5));
    }

    #[test]
    fn unfinished_queries_count_as_violations_when_stale() {
        let rep = report(
            vec![record(1, 0, 0, 100)],
            vec![
                UnfinishedQuery {
                    id: 2,
                    model: ModelId::DEFAULT,
                    batch_size: 5,
                    arrival_us: 0,
                }, // stale
                UnfinishedQuery {
                    id: 3,
                    model: ModelId::DEFAULT,
                    batch_size: 5,
                    arrival_us: 999_999,
                }, // fresh
            ],
            10_000,
        );
        assert!((rep.violation_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_latency() {
        let records: Vec<QueryRecord> = (1..=100)
            .map(|i| record(i, 0, 0, i as TimeUs * 1000))
            .collect();
        let rep = report(records, vec![], 1_000_000);
        assert_eq!(rep.p99_latency_us(), 99_000);
        assert_eq!(rep.latency_percentile_us(50.0), 50_000);
        assert!((rep.mean_latency_ms() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_harmless() {
        let rep = report(vec![], vec![], 1000);
        assert_eq!(rep.completed(), 0);
        assert_eq!(rep.throughput_qps(), 0.0);
        assert_eq!(rep.p99_latency_us(), 0);
        assert_eq!(rep.violation_fraction(), 0.0);
        assert!(rep.meets_qos(0.0));
    }

    #[test]
    fn violation_timeline_buckets_by_arrival_and_counts_unfinished() {
        let rep = report(
            vec![
                record(1, 0, 0, 5_000),               // on time, bucket 0
                record(2, 100_000, 100_000, 500_000), // late, bucket 1
                record(3, 150_000, 150_000, 160_000), // on time, bucket 1
            ],
            vec![UnfinishedQuery {
                id: 4,
                model: ModelId::DEFAULT,
                batch_size: 5,
                arrival_us: 120_000, // stale by the 1s horizon: violation
            }],
            10_000,
        );
        let timeline = rep.violation_timeline(100_000);
        assert_eq!(timeline[0], (0, 0.0));
        assert_eq!(timeline[1], (100_000, 2.0 / 3.0));
        // Later buckets have no arrivals: rate 0.
        assert!(timeline[2..].iter().all(|&(_, v)| v == 0.0));
    }

    #[test]
    fn time_to_recover_finds_the_stable_suffix() {
        // Violations in buckets 1 and 3 (arrival times 150k and 350k), clean
        // after that: recovery from the 100k boundary is at bucket 4.
        let rep = report(
            vec![
                record(1, 150_000, 150_000, 600_000),
                record(2, 250_000, 250_000, 255_000),
                record(3, 350_000, 350_000, 800_000),
                record(4, 450_000, 450_000, 455_000),
                record(5, 550_000, 550_000, 555_000),
            ],
            vec![],
            10_000,
        );
        assert_eq!(rep.time_to_recover(100_000, 100_000, 0.0), Some(300_000));
        // Never clean enough at an impossible tolerance over dirty buckets.
        let all_late = report(vec![record(1, 950_000, 950_000, 999_999)], vec![], 10);
        assert_eq!(all_late.time_to_recover(900_000, 100_000, 0.0), None);
    }

    #[test]
    fn outage_recoveries_anchor_time_to_recover_at_each_onset() {
        // One late arrival in bucket 1 (the outage transient), clean after:
        // recovery from the 100 ms onset lands at bucket 2, a 100 ms delay.
        let mut rep = report(
            vec![
                record(1, 150_000, 150_000, 600_000),
                record(2, 250_000, 250_000, 255_000),
                record(3, 350_000, 350_000, 355_000),
            ],
            vec![],
            10_000,
        );
        rep.outages.push(OutageRecord {
            domain: "us-east-1/us-east-1a".into(),
            start_us: 100_000,
            end_us: 200_000,
            killed_instances: 2,
            lost_queries: 5,
        });
        assert_eq!(
            rep.outage_recoveries(100_000, 0.0),
            vec![("us-east-1/us-east-1a".to_string(), Some(100_000))]
        );
    }

    #[test]
    fn per_model_breakdown_sums_to_aggregates_and_applies_per_model_qos() {
        // Model 0: 10 ms QoS, model 1: 100 ms QoS.  The same 50 ms latency is
        // a violation for model 0 but fine for model 1.
        let mut r0 = record(1, 0, 0, 50_000);
        r0.model = ModelId::new(0);
        let mut r1 = record(2, 0, 0, 50_000);
        r1.model = ModelId::new(1);
        let mut r2 = record(3, 0, 0, 5_000);
        r2.model = ModelId::new(0);
        let rep = SimReport {
            scheduler: "test".into(),
            records: vec![r0, r1, r2],
            unfinished: vec![UnfinishedQuery {
                id: 4,
                model: ModelId::new(1),
                batch_size: 5,
                arrival_us: 0, // stale at the 1 s horizon for both targets
            }],
            offered: 4,
            horizon_us: 1_000_000,
            qos_us: 10_000,
            qos_by_model: vec![10_000, 100_000],
            billed_dollars: 0.0,
            billed_by_model: vec![0.0, 0.0],
            // Model 0 completed 2 queries at 0.9 accuracy each, model 1
            // completed one at 0.95.
            accuracy_sum_by_model: vec![1.8, 0.95],
            events_processed: 0,
            preemption_notices: 0,
            preempted_instances: 0,
            requeued_queries: 0,
            rejected_purchases: 0,
            straggler_onsets: 0,
            outages: vec![],
            service: ServiceStats::default(),
        };
        let per = rep.per_model();
        assert_eq!(per.len(), 2);
        assert_eq!(
            (per[0].offered, per[0].completed, per[0].violations),
            (2, 2, 1)
        );
        assert_eq!(
            (per[1].offered, per[1].completed, per[1].violations),
            (2, 1, 1)
        );
        assert_eq!(per[0].unfinished + per[1].unfinished, 1);
        // Sums match the aggregates exactly.
        assert_eq!(per.iter().map(|m| m.offered).sum::<usize>(), rep.offered);
        assert_eq!(
            per.iter().map(|m| m.completed).sum::<usize>(),
            rep.completed()
        );
        assert_eq!(
            per.iter().map(|m| m.violations).sum::<usize>(),
            rep.violations()
        );
        assert_eq!(per[0].p99_latency_us, 50_000);
        assert!((per[0].violation_fraction() - 0.5).abs() < 1e-12);
        // Per-model delivered accuracy is the per-model sum over completions.
        assert!((per[0].mean_accuracy - 0.9).abs() < 1e-12);
        assert!((per[1].mean_accuracy - 0.95).abs() < 1e-12);
        assert!((rep.delivered_accuracy() - (1.8 + 0.95) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn service_stats_means_handle_empty_and_populated_counters() {
        let empty = ServiceStats::default();
        assert_eq!(empty.mean_batch_fill(), 0.0);
        assert_eq!(empty.mean_batch_wait_us(), 0.0);
        assert_eq!(empty.mean_cold_start_wait_us(), 0.0);
        let stats = ServiceStats {
            calendar_scheduled: 10,
            calendar_cancelled: 4,
            calendar_stale_popped: 3,
            batches_fired: 4,
            batched_queries: 10,
            batch_fill_sum: 100,
            batch_wait_us_sum: 5_000,
            cold_starts: 5,
            cold_start_wait_us_sum: 2_500_000,
            parked_us_sum: 9_000_000,
        };
        assert_eq!(stats.mean_batch_fill(), 25.0);
        assert_eq!(stats.mean_batch_wait_us(), 500.0);
        assert_eq!(stats.mean_cold_start_wait_us(), 500_000.0);
        let doubled = stats.merged(stats);
        assert_eq!(doubled.batch_fill_sum, 200);
        assert_eq!(doubled.mean_batch_fill(), 25.0);
        assert_eq!(doubled.cold_starts, 10);
        assert_eq!(doubled.cold_start_wait_us_sum, 5_000_000);
        assert_eq!(doubled.parked_us_sum, 18_000_000);
    }

    #[test]
    fn per_type_breakdown() {
        let mut r1 = record(1, 0, 0, 10);
        r1.type_index = 0;
        let mut r2 = record(2, 0, 0, 10);
        r2.type_index = 2;
        let rep = report(vec![r1, r2], vec![], 1000);
        assert_eq!(rep.per_type_completions(4), vec![1, 0, 1, 0]);
    }

    /// A shard-shaped report: model `m` of `n`, with its records/unfinished
    /// tagged `m`, a full-length QoS table, and its bill in slot `m`.
    fn shard(m: usize, n: usize, ids: &[u64], unfinished_ids: &[u64], billed: f64) -> SimReport {
        let records: Vec<QueryRecord> = ids
            .iter()
            .map(|&id| {
                let mut r = record(id, id * 10, id * 10, id * 10 + 5_000 * (m as u64 + 1));
                r.model = ModelId::new(m);
                r
            })
            .collect();
        let unfinished: Vec<UnfinishedQuery> = unfinished_ids
            .iter()
            .map(|&id| UnfinishedQuery {
                id,
                model: ModelId::new(m),
                batch_size: 3,
                arrival_us: id * 10,
            })
            .collect();
        let mut billed_by_model = vec![0.0; n];
        billed_by_model[m] = billed;
        let mut accuracy_sum_by_model = vec![0.0; n];
        accuracy_sum_by_model[m] = records.len() as f64 * 0.95;
        SimReport {
            scheduler: "fcfs".into(),
            offered: records.len() + unfinished.len(),
            records,
            unfinished,
            horizon_us: 1_000_000 + m as u64,
            qos_us: 10_000,
            qos_by_model: (0..n).map(|i| 10_000 + i as u64 * 1_000).collect(),
            billed_dollars: billed,
            billed_by_model,
            accuracy_sum_by_model,
            events_processed: 100 + m as u64,
            preemption_notices: m,
            preempted_instances: 0,
            requeued_queries: 2 * m,
            rejected_purchases: m,
            straggler_onsets: 3 * m,
            outages: vec![OutageRecord {
                domain: format!("us-east-1/us-east-1{}", (b'a' + m as u8) as char),
                start_us: 1_000 * (m as u64 + 1),
                end_us: 2_000 * (m as u64 + 1),
                killed_instances: m,
                lost_queries: 2 * m,
            }],
            service: ServiceStats {
                calendar_scheduled: 50 + m as u64,
                calendar_cancelled: 10 + m as u64,
                calendar_stale_popped: 8 + m as u64,
                batches_fired: 4 + m as u64,
                batched_queries: 9 + m as u64,
                batch_fill_sum: 40 + m as u64,
                batch_wait_us_sum: 1_000 + m as u64,
                cold_starts: 2 + m as u64,
                cold_start_wait_us_sum: 500_000 * (m as u64 + 1),
                parked_us_sum: 7_000 + m as u64,
            },
        }
    }

    /// Field-wise bit-equality of two reports (no `PartialEq` on
    /// `SimReport` by design; billing compares exactly).
    fn assert_reports_identical(a: &SimReport, b: &SimReport) {
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.records, b.records);
        assert_eq!(a.unfinished, b.unfinished);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.horizon_us, b.horizon_us);
        assert_eq!(a.qos_us, b.qos_us);
        assert_eq!(a.qos_by_model, b.qos_by_model);
        assert_eq!(a.billed_dollars.to_bits(), b.billed_dollars.to_bits());
        assert_eq!(a.billed_by_model.len(), b.billed_by_model.len());
        for (x, y) in a.billed_by_model.iter().zip(&b.billed_by_model) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.accuracy_sum_by_model.len(), b.accuracy_sum_by_model.len());
        for (x, y) in a.accuracy_sum_by_model.iter().zip(&b.accuracy_sum_by_model) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.preemption_notices, b.preemption_notices);
        assert_eq!(a.preempted_instances, b.preempted_instances);
        assert_eq!(a.requeued_queries, b.requeued_queries);
        assert_eq!(a.rejected_purchases, b.rejected_purchases);
        assert_eq!(a.straggler_onsets, b.straggler_onsets);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.service, b.service);
    }

    #[test]
    fn merge_with_an_empty_shard_is_the_identity_up_to_canonical_order() {
        let a = shard(0, 2, &[1, 2, 3], &[9], 1.5);
        let empty = SimReport {
            scheduler: "fcfs".into(),
            records: vec![],
            unfinished: vec![],
            offered: 0,
            horizon_us: 0,
            qos_us: 0,
            qos_by_model: vec![],
            billed_dollars: 0.0,
            billed_by_model: vec![0.0, 0.0],
            accuracy_sum_by_model: vec![0.0, 0.0],
            events_processed: 0,
            preemption_notices: 0,
            preempted_instances: 0,
            requeued_queries: 0,
            rejected_purchases: 0,
            straggler_onsets: 0,
            outages: vec![],
            service: ServiceStats::default(),
        };
        let merged = a.clone().merge(empty.clone());
        // `a` is already canonically ordered (ids ascending with completion
        // times), so the merge with an empty shard reproduces it exactly.
        assert_reports_identical(&merged, &a);
        let merged_flipped = empty.merge(a.clone());
        assert_reports_identical(&merged_flipped, &a);
    }

    #[test]
    fn merge_sums_counters_and_interleaves_by_the_canonical_key() {
        let a = shard(0, 2, &[1, 4], &[7], 1.25);
        let b = shard(1, 2, &[2, 3], &[8], 2.5);
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.offered, a.offered + b.offered);
        assert_eq!(merged.completed(), 4);
        assert_eq!(merged.events_processed, 201);
        assert_eq!(merged.preemption_notices, 1);
        assert_eq!(merged.requeued_queries, 2);
        assert_eq!(merged.horizon_us, 1_000_001);
        assert_eq!(merged.rejected_purchases, 1);
        assert_eq!(merged.straggler_onsets, 3);
        // Outage records interleave by (start, domain).
        assert_eq!(
            merged
                .outages
                .iter()
                .map(|o| (o.start_us, o.domain.as_str()))
                .collect::<Vec<_>>(),
            vec![
                (1_000, "us-east-1/us-east-1a"),
                (2_000, "us-east-1/us-east-1b"),
            ]
        );
        assert_eq!(merged.qos_by_model, vec![10_000, 11_000]);
        assert_eq!(merged.billed_by_model, vec![1.25, 2.5]);
        assert_eq!(merged.billed_dollars, 0.0 + 1.25 + 2.5);
        // Service-layer counters sum field-wise.
        assert_eq!(merged.service, a.service.merged(b.service));
        assert_eq!(merged.service.calendar_scheduled, 101);
        assert_eq!(merged.service.batches_fired, 9);
        assert_eq!(merged.service.cold_starts, 5);
        assert_eq!(merged.service.cold_start_wait_us_sum, 1_500_000);
        assert_eq!(merged.service.parked_us_sum, 14_001);
        // Records sorted by (completion, arrival, id); unfinished by
        // (arrival, id).
        assert!(merged
            .records
            .windows(2)
            .all(|w| SimReport::record_key(&w[0]) <= SimReport::record_key(&w[1])));
        assert_eq!(
            merged.unfinished.iter().map(|u| u.id).collect::<Vec<_>>(),
            vec![7, 8]
        );
        // Differing scheduler names union sorted.
        let mut c = shard(0, 2, &[], &[], 0.0);
        c.scheduler = "kairos".into();
        assert_eq!(shard(1, 2, &[], &[], 0.0).merge(c).scheduler, "fcfs+kairos");
    }

    #[test]
    fn merge_is_commutative_and_associative_over_permuted_shard_orders() {
        let shards = [
            shard(0, 3, &[1, 5, 9], &[20], 0.75),
            shard(1, 3, &[2, 6], &[21, 22], 1.5),
            shard(2, 3, &[3, 7, 8], &[], 3.25),
        ];
        let fold = |order: &[usize]| -> SimReport {
            order
                .iter()
                .map(|&i| shards[i].clone())
                .reduce(SimReport::merge)
                .unwrap()
        };
        let reference = fold(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_reports_identical(&fold(&order), &reference);
        }
        // Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
        let left = shards[0]
            .clone()
            .merge(shards[1].clone())
            .merge(shards[2].clone());
        let right = shards[0]
            .clone()
            .merge(shards[1].clone().merge(shards[2].clone()));
        assert_reports_identical(&left, &right);
    }

    #[test]
    fn merge_many_is_bit_identical_to_the_pairwise_fold() {
        let shards = [
            shard(0, 3, &[1, 5, 9], &[20], 0.75),
            shard(1, 3, &[2, 6], &[21, 22], 1.5),
            shard(2, 3, &[3, 7, 8], &[], 3.25),
        ];
        let fold = shards
            .iter()
            .cloned()
            .reduce(SimReport::merge)
            .expect("non-empty");
        let kway = SimReport::merge_many(shards.iter().cloned()).expect("non-empty");
        assert_reports_identical(&kway, &fold);

        // Differing scheduler names union exactly as the fold unions them.
        let mut renamed = shards.to_vec();
        renamed[1].scheduler = "kairos".into();
        renamed[2].scheduler = "drs+kairos".into();
        let fold = renamed
            .iter()
            .cloned()
            .reduce(SimReport::merge)
            .expect("non-empty");
        let kway = SimReport::merge_many(renamed.iter().cloned()).expect("non-empty");
        assert_eq!(kway.scheduler, "drs+fcfs+kairos");
        assert_reports_identical(&kway, &fold);

        // An unsorted input falls back to the fold (which sorts), so the
        // equivalence holds unconditionally.
        let mut scrambled = shards.to_vec();
        scrambled[0].records.swap(0, 2);
        let fold = scrambled
            .iter()
            .cloned()
            .reduce(SimReport::merge)
            .expect("non-empty");
        let kway = SimReport::merge_many(scrambled.iter().cloned()).expect("non-empty");
        assert_reports_identical(&kway, &fold);

        // Degenerate arities.
        assert!(SimReport::merge_many(std::iter::empty()).is_none());
        let single = SimReport::merge_many([shards[1].clone()]).expect("one shard");
        assert_reports_identical(&single, &shards[1]);
    }
}

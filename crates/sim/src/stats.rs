//! Simulation statistics: per-query records and aggregated QoS / throughput
//! metrics.
//!
//! The paper's central metric is the *allowable throughput*: the largest
//! query rate (QPS) a configuration can sustain without violating the QoS
//! target, defined on the 99th-percentile tail latency (Sec. 3).  The report
//! exposes the building blocks: completion records, tail latencies, violation
//! fractions, and goodput.

use kairos_workload::{ModelId, TimeUs};
use serde::{Deserialize, Serialize};

/// Lifecycle record of one query that finished service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query identifier.
    pub id: u64,
    /// The model the query was served by.
    pub model: ModelId,
    /// Batch size of the query.
    pub batch_size: u32,
    /// Arrival time at the system.
    pub arrival_us: TimeUs,
    /// Time service started on the chosen instance.
    pub start_us: TimeUs,
    /// Time service completed.
    pub completion_us: TimeUs,
    /// Index of the serving instance within the cluster.
    pub instance_index: usize,
    /// Index of the serving instance's type within the pool.
    pub type_index: usize,
}

impl QueryRecord {
    /// End-to-end latency (queueing + service) in microseconds.
    pub fn latency_us(&self) -> TimeUs {
        self.completion_us.saturating_sub(self.arrival_us)
    }

    /// Time spent waiting before service started.
    pub fn wait_us(&self) -> TimeUs {
        self.start_us.saturating_sub(self.arrival_us)
    }

    /// Whether the query met the QoS target.
    pub fn within_qos(&self, qos_us: u64) -> bool {
        self.latency_us() <= qos_us
    }
}

/// A query that arrived but never completed before the simulation horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnfinishedQuery {
    /// Query identifier.
    pub id: u64,
    /// The model the query targeted.
    pub model: ModelId,
    /// Batch size of the query.
    pub batch_size: u32,
    /// Arrival time at the system.
    pub arrival_us: TimeUs,
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the scheduling policy that produced this run.
    pub scheduler: String,
    /// Per-query completion records.
    pub records: Vec<QueryRecord>,
    /// Queries that never completed before the horizon.
    pub unfinished: Vec<UnfinishedQuery>,
    /// Total number of queries offered to the system.
    pub offered: usize,
    /// Virtual time span of the run (last event time), in microseconds.
    pub horizon_us: TimeUs,
    /// QoS target of the primary ([`ModelId::DEFAULT`]) model, in
    /// microseconds.  Single-model runs read this; per-model accounting
    /// resolves through [`SimReport::qos_for`].
    pub qos_us: u64,
    /// Per-model QoS targets in microseconds, indexed by [`ModelId`].
    /// `[qos_us]` for single-model runs; may be left empty by hand-built
    /// reports, in which case every model falls back to [`Self::qos_us`].
    pub qos_by_model: Vec<u64>,
    /// Time-integrated dollars actually billed over the run: each instance
    /// is charged its offering's (possibly time-varying) price from the
    /// moment it was requested until it terminally left service (or the
    /// horizon, if still alive).  With constant prices this equals
    /// `hourly cost × hours`, bit-for-bit per instance.
    pub billed_dollars: f64,
    /// Market preemption notices delivered during the run.
    pub preemption_notices: usize,
    /// Instances forcibly reclaimed by the market.
    pub preempted_instances: usize,
    /// Queries requeued to the central queue by preemption kills (a query
    /// requeued by two successive kills counts twice).
    pub requeued_queries: usize,
}

/// One model's slice of a [`SimReport`]: the per-model accounting that sums
/// exactly to the aggregate report (see [`SimReport::per_model`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// The model this row describes.
    pub model: ModelId,
    /// Queries of this model offered to the system.
    pub offered: usize,
    /// Queries of this model that completed.
    pub completed: usize,
    /// Queries of this model that never completed before the horizon.
    pub unfinished: usize,
    /// QoS violations attributed to this model (late completions plus stale
    /// unfinished queries, judged against *this model's* QoS target).
    pub violations: usize,
    /// 99th-percentile end-to-end latency of this model's completions, in
    /// microseconds (0 when nothing completed).
    pub p99_latency_us: TimeUs,
    /// Completed queries of this model per second of simulated time.
    pub throughput_qps: f64,
}

impl ModelReport {
    /// Fraction of this model's offered queries that violated its QoS.
    pub fn violation_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.violations as f64 / self.offered as f64
    }
}

/// Nearest-rank percentile over a **sorted** latency slice: the smallest
/// latency such that at least `percentile` percent of entries are at or
/// below it (0 for an empty slice).  The single percentile convention used
/// by both the aggregate and the per-model report paths.
fn nearest_rank_us(sorted: &[TimeUs], percentile: f64) -> TimeUs {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    let rank = ((percentile / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[rank]
}

impl SimReport {
    /// Number of completed queries.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// QoS target of a model in microseconds (array index; falls back to
    /// the primary [`Self::qos_us`] when the table does not cover the
    /// model).
    #[inline]
    pub fn qos_for(&self, model: ModelId) -> u64 {
        self.qos_by_model
            .get(model.index())
            .copied()
            .unwrap_or(self.qos_us)
    }

    /// One past the largest model index appearing in the report (QoS table,
    /// records or unfinished queries).
    pub fn num_models(&self) -> usize {
        self.qos_by_model
            .len()
            .max(
                self.records
                    .iter()
                    .map(|r| r.model.index() + 1)
                    .max()
                    .unwrap_or(0),
            )
            .max(
                self.unfinished
                    .iter()
                    .map(|u| u.model.index() + 1)
                    .max()
                    .unwrap_or(0),
            )
            .max(1)
    }

    /// Per-model breakdown of the run, indexed by [`ModelId`] over
    /// `0..self.num_models()`.  The `offered`, `completed`, `unfinished`
    /// and `violations` columns each sum **exactly** to the corresponding
    /// aggregate ([`Self::offered`] via completed + unfinished,
    /// [`Self::completed`], [`Self::violations`]) — this invariant is
    /// property-tested in `tests/proptest_multimodel.rs`.
    pub fn per_model(&self) -> Vec<ModelReport> {
        let n = self.num_models();
        let mut offered = vec![0usize; n];
        let mut completed = vec![0usize; n];
        let mut unfinished = vec![0usize; n];
        let mut violations = vec![0usize; n];
        let mut latencies: Vec<Vec<TimeUs>> = vec![Vec::new(); n];
        for r in &self.records {
            let m = r.model.index();
            offered[m] += 1;
            completed[m] += 1;
            latencies[m].push(r.latency_us());
            if !r.within_qos(self.qos_for(r.model)) {
                violations[m] += 1;
            }
        }
        for u in &self.unfinished {
            let m = u.model.index();
            offered[m] += 1;
            unfinished[m] += 1;
            if self.horizon_us.saturating_sub(u.arrival_us) > self.qos_for(u.model) {
                violations[m] += 1;
            }
        }
        let horizon_s = self.horizon_us as f64 / 1e6;
        (0..n)
            .map(|m| {
                latencies[m].sort_unstable();
                let p99 = nearest_rank_us(&latencies[m], 99.0);
                ModelReport {
                    model: ModelId::new(m),
                    offered: offered[m],
                    completed: completed[m],
                    unfinished: unfinished[m],
                    violations: violations[m],
                    p99_latency_us: p99,
                    throughput_qps: if self.horizon_us == 0 {
                        0.0
                    } else {
                        completed[m] as f64 / horizon_s
                    },
                }
            })
            .collect()
    }

    /// Time-weighted mean dollars per hour over the run: the billed total
    /// spread over the horizon.  This is the cost axis of the market
    /// benchmarks (`count × list price` overstates spend whenever the run
    /// rode cheaper spot capacity or scaled in mid-run).
    pub fn billed_cost_per_hour(&self) -> f64 {
        if self.horizon_us == 0 {
            return 0.0;
        }
        self.billed_dollars / (self.horizon_us as f64 / 3.6e9)
    }

    /// Raw throughput: completed queries per second of simulated time.
    pub fn throughput_qps(&self) -> f64 {
        if self.horizon_us == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.horizon_us as f64 / 1e6)
    }

    /// Goodput: queries completed *within QoS* per second of simulated time —
    /// the quantity the paper calls allowable throughput once the offered load
    /// is at the QoS-feasibility boundary.
    pub fn goodput_qps(&self) -> f64 {
        if self.horizon_us == 0 {
            return 0.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.within_qos(self.qos_for(r.model)))
            .count();
        ok as f64 / (self.horizon_us as f64 / 1e6)
    }

    /// Number of offered queries that violated QoS: completions beyond the
    /// target plus unfinished queries already in the system longer than the
    /// target at the horizon (so an overloaded system cannot hide violations
    /// in its backlog).
    ///
    /// The late-completion term is monotone over a run — once a completion
    /// is late it stays late, and on-time completions can never turn into
    /// violations — which is the bound the engine's early-exit capacity
    /// probe ([`kairos_sim::SimEngine::run_qos_probe`](crate::SimEngine::run_qos_probe))
    /// relies on.
    pub fn violations(&self) -> usize {
        let late_completed = self
            .records
            .iter()
            .filter(|r| !r.within_qos(self.qos_for(r.model)))
            .count();
        let late_unfinished = self
            .unfinished
            .iter()
            .filter(|u| self.horizon_us.saturating_sub(u.arrival_us) > self.qos_for(u.model))
            .count();
        late_completed + late_unfinished
    }

    /// Fraction of offered queries that violated QoS (see
    /// [`Self::violations`]).
    pub fn violation_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.violations() as f64 / self.offered as f64
    }

    /// Whether the run satisfies the QoS target at the given tail tolerance
    /// (e.g. 0.01 for a 99th-percentile target).
    pub fn meets_qos(&self, tolerance: f64) -> bool {
        self.violation_fraction() <= tolerance
    }

    /// Latency at the given percentile (0–100) over completed queries, in
    /// microseconds.  Returns 0 when nothing completed.
    pub fn latency_percentile_us(&self, percentile: f64) -> TimeUs {
        assert!(
            (0.0..=100.0).contains(&percentile),
            "percentile out of range"
        );
        let mut latencies: Vec<TimeUs> = self.records.iter().map(|r| r.latency_us()).collect();
        latencies.sort_unstable();
        nearest_rank_us(&latencies, percentile)
    }

    /// 99th-percentile latency in microseconds (the paper's QoS metric).
    pub fn p99_latency_us(&self) -> TimeUs {
        self.latency_percentile_us(99.0)
    }

    /// Mean end-to-end latency in milliseconds over completed queries.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.latency_us() as f64)
            .sum::<f64>()
            / self.records.len() as f64
            / 1000.0
    }

    /// Windowed QoS-violation rate over virtual time, **by arrival**: bucket
    /// `i` covers arrivals in `[i * bucket_us, (i+1) * bucket_us)` and holds
    /// the fraction of them that violated QoS — completed too late, or never
    /// completed despite being in the system longer than the target (empty
    /// buckets report 0).  Attributing violations to the arrival instant
    /// answers the adaptation question "how were queries *offered at time t*
    /// served?": a load shift shows up as a spike, recovery as its decay,
    /// and stragglers from the transient do not smear into later buckets.
    pub fn violation_timeline(&self, bucket_us: TimeUs) -> Vec<(TimeUs, f64)> {
        assert!(bucket_us > 0, "bucket width must be positive");
        let buckets = (self.horizon_us / bucket_us + 1) as usize;
        let mut late = vec![0usize; buckets];
        let mut total = vec![0usize; buckets];
        for r in &self.records {
            let b = (r.arrival_us / bucket_us) as usize;
            if b < buckets {
                total[b] += 1;
                if !r.within_qos(self.qos_for(r.model)) {
                    late[b] += 1;
                }
            }
        }
        for u in &self.unfinished {
            let b = (u.arrival_us / bucket_us) as usize;
            if b < buckets {
                total[b] += 1;
                if self.horizon_us.saturating_sub(u.arrival_us) > self.qos_for(u.model) {
                    late[b] += 1;
                }
            }
        }
        (0..buckets)
            .map(|b| {
                let rate = if total[b] == 0 {
                    0.0
                } else {
                    late[b] as f64 / total[b] as f64
                };
                (b as TimeUs * bucket_us, rate)
            })
            .collect()
    }

    /// Time the system needed to restore QoS after a disruption at
    /// `boundary_us`: the smallest `t >= boundary_us` such that every bucket
    /// of the [violation timeline](Self::violation_timeline) from `t` through
    /// the last arrival stays at or below `tolerance`.  Buckets after the
    /// last arrival carry no evidence and are ignored — a run cannot
    /// "recover" into silence.  Returns the recovery delay `t - boundary_us`,
    /// or `None` if the system never stabilizes within the run.
    pub fn time_to_recover(
        &self,
        boundary_us: TimeUs,
        bucket_us: TimeUs,
        tolerance: f64,
    ) -> Option<TimeUs> {
        let last_arrival = self
            .records
            .iter()
            .map(|r| r.arrival_us)
            .chain(self.unfinished.iter().map(|u| u.arrival_us))
            .max()?;
        let timeline = self.violation_timeline(bucket_us);
        let mut recovered_from: Option<TimeUs> = None;
        for &(start, rate) in timeline
            .iter()
            .filter(|(s, _)| *s >= boundary_us && *s <= last_arrival)
        {
            if rate <= tolerance {
                recovered_from.get_or_insert(start);
            } else {
                recovered_from = None;
            }
        }
        recovered_from.map(|t| t - boundary_us)
    }

    /// Number of completed queries served by each instance-type index.
    pub fn per_type_completions(&self, num_types: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_types];
        for r in &self.records {
            if r.type_index < num_types {
                counts[r.type_index] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, arrival: TimeUs, start: TimeUs, completion: TimeUs) -> QueryRecord {
        QueryRecord {
            id,
            model: ModelId::DEFAULT,
            batch_size: 10,
            arrival_us: arrival,
            start_us: start,
            completion_us: completion,
            instance_index: 0,
            type_index: 0,
        }
    }

    fn report(records: Vec<QueryRecord>, unfinished: Vec<UnfinishedQuery>, qos: u64) -> SimReport {
        let offered = records.len() + unfinished.len();
        SimReport {
            scheduler: "test".into(),
            records,
            unfinished,
            offered,
            horizon_us: 1_000_000,
            qos_us: qos,
            qos_by_model: vec![qos],
            billed_dollars: 0.0,
            preemption_notices: 0,
            preempted_instances: 0,
            requeued_queries: 0,
        }
    }

    #[test]
    fn record_latency_and_wait() {
        let r = record(1, 100, 400, 900);
        assert_eq!(r.latency_us(), 800);
        assert_eq!(r.wait_us(), 300);
        assert!(r.within_qos(800));
        assert!(!r.within_qos(799));
    }

    #[test]
    fn throughput_and_goodput() {
        let rep = report(
            vec![record(1, 0, 0, 100), record(2, 0, 0, 200_000)],
            vec![],
            10_000,
        );
        assert!((rep.throughput_qps() - 2.0).abs() < 1e-9);
        // Only the first record is within the 10 ms QoS.
        assert!((rep.goodput_qps() - 1.0).abs() < 1e-9);
        assert_eq!(rep.violation_fraction(), 0.5);
        assert!(!rep.meets_qos(0.01));
        assert!(rep.meets_qos(0.5));
    }

    #[test]
    fn unfinished_queries_count_as_violations_when_stale() {
        let rep = report(
            vec![record(1, 0, 0, 100)],
            vec![
                UnfinishedQuery {
                    id: 2,
                    model: ModelId::DEFAULT,
                    batch_size: 5,
                    arrival_us: 0,
                }, // stale
                UnfinishedQuery {
                    id: 3,
                    model: ModelId::DEFAULT,
                    batch_size: 5,
                    arrival_us: 999_999,
                }, // fresh
            ],
            10_000,
        );
        assert!((rep.violation_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_latency() {
        let records: Vec<QueryRecord> = (1..=100)
            .map(|i| record(i, 0, 0, i as TimeUs * 1000))
            .collect();
        let rep = report(records, vec![], 1_000_000);
        assert_eq!(rep.p99_latency_us(), 99_000);
        assert_eq!(rep.latency_percentile_us(50.0), 50_000);
        assert!((rep.mean_latency_ms() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_harmless() {
        let rep = report(vec![], vec![], 1000);
        assert_eq!(rep.completed(), 0);
        assert_eq!(rep.throughput_qps(), 0.0);
        assert_eq!(rep.p99_latency_us(), 0);
        assert_eq!(rep.violation_fraction(), 0.0);
        assert!(rep.meets_qos(0.0));
    }

    #[test]
    fn violation_timeline_buckets_by_arrival_and_counts_unfinished() {
        let rep = report(
            vec![
                record(1, 0, 0, 5_000),               // on time, bucket 0
                record(2, 100_000, 100_000, 500_000), // late, bucket 1
                record(3, 150_000, 150_000, 160_000), // on time, bucket 1
            ],
            vec![UnfinishedQuery {
                id: 4,
                model: ModelId::DEFAULT,
                batch_size: 5,
                arrival_us: 120_000, // stale by the 1s horizon: violation
            }],
            10_000,
        );
        let timeline = rep.violation_timeline(100_000);
        assert_eq!(timeline[0], (0, 0.0));
        assert_eq!(timeline[1], (100_000, 2.0 / 3.0));
        // Later buckets have no arrivals: rate 0.
        assert!(timeline[2..].iter().all(|&(_, v)| v == 0.0));
    }

    #[test]
    fn time_to_recover_finds_the_stable_suffix() {
        // Violations in buckets 1 and 3 (arrival times 150k and 350k), clean
        // after that: recovery from the 100k boundary is at bucket 4.
        let rep = report(
            vec![
                record(1, 150_000, 150_000, 600_000),
                record(2, 250_000, 250_000, 255_000),
                record(3, 350_000, 350_000, 800_000),
                record(4, 450_000, 450_000, 455_000),
                record(5, 550_000, 550_000, 555_000),
            ],
            vec![],
            10_000,
        );
        assert_eq!(rep.time_to_recover(100_000, 100_000, 0.0), Some(300_000));
        // Never clean enough at an impossible tolerance over dirty buckets.
        let all_late = report(vec![record(1, 950_000, 950_000, 999_999)], vec![], 10);
        assert_eq!(all_late.time_to_recover(900_000, 100_000, 0.0), None);
    }

    #[test]
    fn per_model_breakdown_sums_to_aggregates_and_applies_per_model_qos() {
        // Model 0: 10 ms QoS, model 1: 100 ms QoS.  The same 50 ms latency is
        // a violation for model 0 but fine for model 1.
        let mut r0 = record(1, 0, 0, 50_000);
        r0.model = ModelId::new(0);
        let mut r1 = record(2, 0, 0, 50_000);
        r1.model = ModelId::new(1);
        let mut r2 = record(3, 0, 0, 5_000);
        r2.model = ModelId::new(0);
        let rep = SimReport {
            scheduler: "test".into(),
            records: vec![r0, r1, r2],
            unfinished: vec![UnfinishedQuery {
                id: 4,
                model: ModelId::new(1),
                batch_size: 5,
                arrival_us: 0, // stale at the 1 s horizon for both targets
            }],
            offered: 4,
            horizon_us: 1_000_000,
            qos_us: 10_000,
            qos_by_model: vec![10_000, 100_000],
            billed_dollars: 0.0,
            preemption_notices: 0,
            preempted_instances: 0,
            requeued_queries: 0,
        };
        let per = rep.per_model();
        assert_eq!(per.len(), 2);
        assert_eq!(
            (per[0].offered, per[0].completed, per[0].violations),
            (2, 2, 1)
        );
        assert_eq!(
            (per[1].offered, per[1].completed, per[1].violations),
            (2, 1, 1)
        );
        assert_eq!(per[0].unfinished + per[1].unfinished, 1);
        // Sums match the aggregates exactly.
        assert_eq!(per.iter().map(|m| m.offered).sum::<usize>(), rep.offered);
        assert_eq!(
            per.iter().map(|m| m.completed).sum::<usize>(),
            rep.completed()
        );
        assert_eq!(
            per.iter().map(|m| m.violations).sum::<usize>(),
            rep.violations()
        );
        assert_eq!(per[0].p99_latency_us, 50_000);
        assert!((per[0].violation_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_type_breakdown() {
        let mut r1 = record(1, 0, 0, 10);
        r1.type_index = 0;
        let mut r2 = record(2, 0, 0, 10);
        r2.type_index = 2;
        let rep = report(vec![r1, r2], vec![], 1000);
        assert_eq!(rep.per_type_completions(4), vec![1, 0, 1, 0]);
    }
}

//! Fair throughput-sharing and dynamic batching for the serving engine.
//!
//! The paper's serving model dedicates an instance to one query at a time,
//! so a completion time is fixed the moment service starts.  This module
//! holds the configuration and per-instance state of the engine's *flex*
//! service path, which relaxes that in two independent, composable ways:
//!
//! * **Fair throughput sharing** ([`SharingOptions`]) — several in-flight
//!   invocations share one instance, each progressing at the per-sharer
//!   rate of a [`ThroughputDegradation`] curve.  Work is tracked in
//!   normalized *processed-volume* units: the instance's volume `V(t)`
//!   advances at `per_sharer_rate(n)` while `n` invocations are active, an
//!   invocation admitted at volume `V0` with `w` microseconds of
//!   single-query work finishes when `V(t)` reaches `V0 + w`, and
//!   completion order is finish-volume order.  An arrival or completion
//!   changes `n`, so only the *frontmost* finish needs re-deriving — an
//!   O(affected-instance) incremental recompute, never a rescan (the
//!   superseded calendar entry dies lazily via its generation stamp).
//! * **Dynamic batching** ([`BatchingOptions`]) — dispatched queries gather
//!   in a per-instance forming buffer and fire as one fused invocation when
//!   the fused batch size reaches the cap or a timeout expires, whichever
//!   is first.  The fused invocation's service time comes from the latency
//!   profile's batch axis, amortizing the per-invocation intercept across
//!   the members.
//!
//! Neither option touches the legacy path: an engine built without
//! [`SharingMode::Fair`] or batching runs the exact pre-flex code,
//! bit-for-bit (property-tested in `tests/proptest_flex.rs`).

use kairos_models::ThroughputDegradation;
use kairos_workload::{Query, TimeUs};
use std::collections::VecDeque;

/// Per-instance-type throughput-sharing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingOptions {
    /// Degradation curve per pool type, indexed by the engine's type index.
    /// A single-entry vector applies that curve to every type.
    curves: Vec<ThroughputDegradation>,
    /// Maximum invocations admitted concurrently per instance; further work
    /// waits in the instance's admission queue.  `0` means unbounded.
    max_concurrency: u32,
}

impl SharingOptions {
    /// One curve for every instance type, unbounded concurrency.
    pub fn uniform(curve: ThroughputDegradation) -> Self {
        Self {
            curves: vec![curve],
            max_concurrency: 0,
        }
    }

    /// Per-type curves (index = the engine's pool-type index).
    ///
    /// # Panics
    /// Panics if `curves` is empty.
    pub fn per_type(curves: Vec<ThroughputDegradation>) -> Self {
        assert!(
            !curves.is_empty(),
            "at least one degradation curve required"
        );
        Self {
            curves,
            max_concurrency: 0,
        }
    }

    /// Caps concurrent invocations per instance (`0` = unbounded).
    pub fn with_max_concurrency(mut self, max_concurrency: u32) -> Self {
        self.max_concurrency = max_concurrency;
        self
    }

    /// The admission cap (`0` = unbounded).
    pub fn max_concurrency(&self) -> u32 {
        self.max_concurrency
    }

    /// Number of per-type curves carried (1 = uniform).
    pub fn num_curves(&self) -> usize {
        self.curves.len()
    }

    /// The curve governing pool type `type_index`.
    pub fn curve(&self, type_index: usize) -> &ThroughputDegradation {
        if self.curves.len() == 1 {
            &self.curves[0]
        } else {
            &self.curves[type_index]
        }
    }
}

/// Whether (and how) instances share their throughput between concurrent
/// invocations.
#[derive(Debug, Clone, PartialEq)]
pub enum SharingMode {
    /// The paper's dedicated-instance model: one invocation at a time,
    /// bit-identical to an engine that never heard of sharing.
    None,
    /// Fair sharing under the given degradation curves.
    Fair(SharingOptions),
}

/// Dynamic-batcher configuration: queue-and-fire on size or timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingOptions {
    /// Fire the forming batch as soon as its fused batch size reaches this
    /// cap (a single query larger than the cap still fires, alone).
    pub max_batch_size: u32,
    /// Fire a non-empty forming batch this long after its first member
    /// arrived, even if undersized.
    pub timeout_us: TimeUs,
}

impl BatchingOptions {
    /// Builds a batcher configuration.
    ///
    /// # Panics
    /// Panics if `max_batch_size` is zero.
    pub fn new(max_batch_size: u32, timeout_us: TimeUs) -> Self {
        assert!(max_batch_size >= 1, "a batch holds at least one query");
        Self {
            max_batch_size,
            timeout_us,
        }
    }
}

/// Engine-level flex configuration: either half may be enabled alone.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FlexConfig {
    pub sharing: Option<SharingOptions>,
    pub batching: Option<BatchingOptions>,
}

impl FlexConfig {
    /// Concurrent-invocation cap per instance: batching without sharing
    /// serves strictly one fused invocation at a time (the legacy serial
    /// discipline over batches); sharing uses its own cap (`0` unbounded).
    pub fn concurrency_cap(&self) -> u32 {
        match &self.sharing {
            Some(s) => s.max_concurrency(),
            None => 1,
        }
    }

    /// Per-invocation progress rate with `n` invocations active on a
    /// `type_index` instance.
    pub fn rate(&self, type_index: usize, n: u32) -> f64 {
        match &self.sharing {
            Some(s) => s.curve(type_index).per_sharer_rate(n),
            None => 1.0,
        }
    }
}

/// One invocation: a fused batch of dispatched queries served together.
/// Unbatched work is a unit with an empty `rest` (no allocation).
#[derive(Debug, Clone)]
pub(crate) struct WorkUnit {
    pub lead: Query,
    pub rest: Vec<Query>,
    /// Fused batch size (sum of the members' batch sizes) — the batch axis
    /// the service time is drawn at.
    pub fused: u32,
}

impl WorkUnit {
    pub fn single(query: Query) -> Self {
        Self {
            lead: query,
            rest: Vec::new(),
            fused: query.batch_size,
        }
    }

    pub fn members(&self) -> usize {
        1 + self.rest.len()
    }
}

/// An admitted invocation progressing under the sharing discipline.
#[derive(Debug, Clone)]
pub(crate) struct ActiveUnit {
    pub unit: WorkUnit,
    /// Admission time — the `start_us` of every member's completion record.
    pub start_us: TimeUs,
    /// The instance volume at which this invocation completes.
    pub finish_volume: f64,
    /// Per-instance admission sequence number: the deterministic tiebreak
    /// for equal finish volumes.
    pub admit_seq: u64,
}

/// Per-instance state of the flex service path.  All fields are pure
/// functions of the instance's event history, so per-model-lane shards
/// replay the combined run's float arithmetic bit-for-bit.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlexState {
    /// The forming batch: `(query, entered_us)` in dispatch order.
    pub forming: VecDeque<(Query, TimeUs)>,
    /// Fused batch size of the forming batch.
    pub forming_fused: u32,
    /// Generation stamp of the pending `BatchTimeout` (lazy deletion).
    pub batch_gen: u64,
    /// Whether a `BatchTimeout` is live in the calendar.
    pub batch_pending: bool,
    /// Fired invocations awaiting an admission slot.
    pub queued: VecDeque<WorkUnit>,
    /// Total queries across `queued`.
    pub queued_members: usize,
    /// Admitted invocations, sorted by `(finish_volume, admit_seq)` — the
    /// deterministic completion order.
    pub active: Vec<ActiveUnit>,
    /// Total queries across `active`.
    pub active_members: usize,
    /// Normalized work processed so far (µs of single-query service).
    pub volume: f64,
    /// Clock of the last volume update.
    pub last_update_us: TimeUs,
    /// Generation stamp of the pending `FlexCompletion` (lazy deletion).
    pub completion_gen: u64,
    /// Whether a `FlexCompletion` is live in the calendar.
    pub completion_pending: bool,
    /// Invocations admitted so far (the `admit_seq` source).
    pub admit_counter: u64,
    /// Whether this instance currently sits in the engine's idle index.
    pub in_idle: bool,
}

impl FlexState {
    /// Queries on this instance in any stage (forming + queued + active).
    pub fn total_members(&self) -> usize {
        self.forming.len() + self.queued_members + self.active_members
    }

    /// No work in any stage — the flex analogue of `SimInstance::is_idle`
    /// (whose serving slot and local queue the flex path never uses).
    pub fn is_empty(&self) -> bool {
        self.forming.is_empty() && self.queued.is_empty() && self.active.is_empty()
    }

    /// Inserts an admitted unit keeping the `(finish_volume, admit_seq)`
    /// order.  O(active) — the "affected instance" part of the incremental
    /// recompute bound.
    pub fn insert_active(&mut self, unit: ActiveUnit) {
        let pos = self.active.partition_point(|a| {
            (a.finish_volume, a.admit_seq) <= (unit.finish_volume, unit.admit_seq)
        });
        self.active_members += unit.unit.members();
        self.active.insert(pos, unit);
    }
}

//! Allowable-throughput (capacity) search.
//!
//! The paper's main metric is the *allowable throughput*: "To find this
//! allowable throughput, we gradually increase the arrival rate of queries,
//! until the QoS is violated" (Sec. 7).  This module automates that ramp:
//! a geometric probe finds an upper bracket, then a bisection refines the
//! largest sustainable rate to the requested resolution.  Every probe replays
//! a freshly generated trace (same seed, new rate) through the discrete-event
//! engine with a *fresh* scheduler instance, so online-learning overhead is
//! included in every evaluation — exactly as in the paper.

use crate::cluster::ServiceSpec;
use crate::context::SimContext;
use crate::engine::SimulationOptions;
use crate::scheduler::Scheduler;
use kairos_models::{Config, PoolSpec};
use kairos_workload::{ArrivalProcess, BatchSizeDistribution, TraceSpec};
use rayon::prelude::*;

/// Options of the capacity search.
#[derive(Debug, Clone)]
pub struct CapacityOptions {
    /// Batch-size mix offered to the system.
    pub batch_sizes: BatchSizeDistribution,
    /// Arrival process template (its rate is overwritten by the ramp).
    pub arrival: ArrivalProcess,
    /// Virtual duration of each probe, in seconds.
    pub duration_s: f64,
    /// Tolerated violation fraction (0.01 reproduces a 99th-percentile QoS).
    pub violation_tolerance: f64,
    /// Lowest rate probed; if even this rate violates QoS the capacity is 0.
    pub min_qps: f64,
    /// Hard cap of the probe rate, to bound the search.
    pub max_qps: f64,
    /// Number of bisection refinement steps after bracketing.
    pub refine_steps: usize,
    /// Seed used for trace generation and service noise (kept constant across
    /// probes: common random numbers make the ramp monotone in practice).
    pub seed: u64,
}

impl Default for CapacityOptions {
    fn default() -> Self {
        Self {
            batch_sizes: BatchSizeDistribution::production_default(),
            arrival: ArrivalProcess::Poisson { rate_qps: 1.0 },
            duration_s: 5.0,
            violation_tolerance: 0.01,
            min_qps: 2.0,
            max_qps: 20_000.0,
            refine_steps: 7,
            seed: 42,
        }
    }
}

impl CapacityOptions {
    /// Convenience: default options with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Result of a capacity search.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// Largest sustained rate that met QoS (queries per second); 0 when even
    /// the minimum probe rate violated the target.
    pub allowable_qps: f64,
    /// Number of simulation probes performed.
    pub probes: usize,
}

/// Checks whether the configuration sustains the given arrival rate within QoS.
pub fn sustains_rate<F>(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    options: &CapacityOptions,
    rate_qps: f64,
    make_scheduler: &mut F,
) -> bool
where
    F: FnMut() -> Box<dyn Scheduler>,
{
    let spec = TraceSpec {
        arrival: options.arrival.with_rate(rate_qps),
        batch_sizes: options.batch_sizes.clone(),
        duration_s: options.duration_s,
        seed: options.seed,
    };
    let trace = spec.generate();
    if trace.is_empty() {
        return true;
    }
    let ctx = SimContext::with_options(
        pool,
        service,
        &trace,
        SimulationOptions { seed: options.seed },
    );
    let mut scheduler = make_scheduler();
    let report = ctx.run(config, scheduler.as_mut());
    report.meets_qos(options.violation_tolerance)
}

/// Finds the allowable throughput of `(pool, config, scheduler)` for the given
/// service and workload by ramping the arrival rate.
pub fn allowable_throughput<F>(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    options: &CapacityOptions,
    mut make_scheduler: F,
) -> CapacityResult
where
    F: FnMut() -> Box<dyn Scheduler>,
{
    assert!(
        options.min_qps > 0.0 && options.max_qps > options.min_qps,
        "invalid rate bounds"
    );
    let mut probes = 0usize;

    // A configuration with no instances serves nothing.
    if config.total_instances() == 0 {
        return CapacityResult {
            allowable_qps: 0.0,
            probes,
        };
    }

    // Probe the minimum rate first.
    probes += 1;
    if !sustains_rate(
        pool,
        config,
        service,
        options,
        options.min_qps,
        &mut make_scheduler,
    ) {
        return CapacityResult {
            allowable_qps: 0.0,
            probes,
        };
    }

    // Geometric ramp until failure or the cap.
    let mut good = options.min_qps;
    let mut bad = None;
    let mut rate = options.min_qps * 2.0;
    while rate <= options.max_qps {
        probes += 1;
        if sustains_rate(pool, config, service, options, rate, &mut make_scheduler) {
            good = rate;
            rate *= 2.0;
        } else {
            bad = Some(rate);
            break;
        }
    }

    let Some(mut bad) = bad else {
        // Never failed below the cap; report the last sustained rate.
        return CapacityResult {
            allowable_qps: good,
            probes,
        };
    };

    // Bisection refinement between the last good and first bad rates.
    for _ in 0..options.refine_steps {
        let mid = (good + bad) / 2.0;
        probes += 1;
        if sustains_rate(pool, config, service, options, mid, &mut make_scheduler) {
            good = mid;
        } else {
            bad = mid;
        }
    }

    CapacityResult {
        allowable_qps: good,
        probes,
    }
}

/// Runs [`allowable_throughput`] for every candidate configuration in
/// parallel (rayon fan-out).  Each candidate's ramp is an independent
/// read-only evaluation over the shared pool/service/options, so this is the
/// sweep primitive the planner comparisons and baseline grid searches use.
/// Results are returned in candidate order.
pub fn allowable_throughput_many<F>(
    pool: &PoolSpec,
    configs: &[Config],
    service: &ServiceSpec,
    options: &CapacityOptions,
    make_scheduler: F,
) -> Vec<CapacityResult>
where
    F: Fn() -> Box<dyn Scheduler> + Sync,
{
    configs
        .par_iter()
        .map(|config| allowable_throughput(pool, config, service, options, &make_scheduler))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, mlmodel::ModelKind};

    fn quick_options() -> CapacityOptions {
        CapacityOptions {
            duration_s: 1.0,
            refine_steps: 4,
            max_qps: 4_000.0,
            ..CapacityOptions::default()
        }
    }

    #[test]
    fn empty_configuration_has_zero_capacity() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let result = allowable_throughput(
            &pool,
            &Config::new(vec![0, 0, 0, 0]),
            &service,
            &quick_options(),
            || Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>,
        );
        assert_eq!(result.allowable_qps, 0.0);
    }

    #[test]
    fn auxiliary_only_configuration_cannot_serve_large_queries() {
        // r5n.large alone cannot serve the near-cap WND queries within 25 ms,
        // so the standalone allowable throughput is 0 (paper Sec. 4).
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let mut opts = quick_options();
        opts.batch_sizes = BatchSizeDistribution::Uniform {
            min: 500,
            max: 1000,
        };
        let result = allowable_throughput(
            &pool,
            &Config::new(vec![0, 0, 4, 0]),
            &service,
            &opts,
            || Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>,
        );
        assert_eq!(result.allowable_qps, 0.0);
    }

    #[test]
    fn parallel_sweep_matches_sequential_ramps() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let opts = quick_options();
        let configs = vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![0, 0, 0, 0]),
            Config::new(vec![2, 0, 1, 0]),
        ];
        let swept = allowable_throughput_many(&pool, &configs, &service, &opts, || {
            Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>
        });
        assert_eq!(swept.len(), configs.len());
        for (config, result) in configs.iter().zip(&swept) {
            let reference = allowable_throughput(&pool, config, &service, &opts, || {
                Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>
            });
            assert_eq!(
                result.allowable_qps, reference.allowable_qps,
                "config {config}"
            );
            assert_eq!(result.probes, reference.probes);
        }
    }

    #[test]
    fn more_gpus_give_more_capacity() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let opts = quick_options();
        let one = allowable_throughput(
            &pool,
            &Config::new(vec![1, 0, 0, 0]),
            &service,
            &opts,
            || Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>,
        );
        let two = allowable_throughput(
            &pool,
            &Config::new(vec![2, 0, 0, 0]),
            &service,
            &opts,
            || Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>,
        );
        assert!(one.allowable_qps > 0.0);
        assert!(
            two.allowable_qps > one.allowable_qps * 1.4,
            "2 GPUs ({}) should clearly beat 1 GPU ({})",
            two.allowable_qps,
            one.allowable_qps
        );
        assert!(one.probes > 2);
    }
}

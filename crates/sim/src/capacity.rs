//! Allowable-throughput (capacity) search.
//!
//! The paper's main metric is the *allowable throughput*: "To find this
//! allowable throughput, we gradually increase the arrival rate of queries,
//! until the QoS is violated" (Sec. 7).  This module automates that ramp:
//! a geometric probe finds an upper bracket, then a bisection refines the
//! largest sustainable rate to the requested resolution.  Every probe replays
//! a freshly generated trace (same seed, new rate) through the discrete-event
//! engine with a *fresh* scheduler instance, so online-learning overhead is
//! included in every evaluation — exactly as in the paper.
//!
//! Two optimizations make the ramp cheap without changing a single verdict:
//!
//! * **Early-exit probes** ([`CapacityOptions::early_exit`], on by default):
//!   a probe replay aborts as soon as the accumulated violations provably
//!   exceed the QoS budget — or provably can no longer exceed it — instead
//!   of draining the whole backlog (see [`SimEngine::run_qos_probe`](crate::SimEngine::run_qos_probe) for the
//!   bound).
//! * **Memoized ramps** ([`CapacityProber`]): a per-`(pool, config)` memo,
//!   keyed by a fingerprint of the pool's interned type names plus the
//!   instance counts, lets
//!   repeated sweeps over overlapping candidate sets — exactly what the
//!   serving loop's replanning produces — reuse prior probes instead of
//!   re-simulating them.

use crate::cluster::ServiceSpec;
use crate::context::SimContext;
use crate::engine::SimulationOptions;
use crate::scheduler::Scheduler;
use kairos_models::{Config, PoolSpec};
use kairos_workload::{ArrivalProcess, BatchSizeDistribution, TraceSpec};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

/// Options of the capacity search.
#[derive(Debug, Clone)]
pub struct CapacityOptions {
    /// Batch-size mix offered to the system.
    pub batch_sizes: BatchSizeDistribution,
    /// Arrival process template (its rate is overwritten by the ramp).
    pub arrival: ArrivalProcess,
    /// Virtual duration of each probe, in seconds.
    pub duration_s: f64,
    /// Tolerated violation fraction (0.01 reproduces a 99th-percentile QoS).
    pub violation_tolerance: f64,
    /// Lowest rate probed; if even this rate violates QoS the capacity is 0.
    pub min_qps: f64,
    /// Hard cap of the probe rate, to bound the search.
    pub max_qps: f64,
    /// Number of bisection refinement steps after bracketing.
    pub refine_steps: usize,
    /// Seed used for trace generation and service noise (kept constant across
    /// probes: common random numbers make the ramp monotone in practice).
    pub seed: u64,
    /// Abort each probe replay as soon as its verdict is provable (identical
    /// verdicts, far less simulated work).  `false` replays every probe to
    /// completion — only useful as a benchmark baseline.
    pub early_exit: bool,
}

impl Default for CapacityOptions {
    fn default() -> Self {
        Self {
            batch_sizes: BatchSizeDistribution::production_default(),
            arrival: ArrivalProcess::Poisson { rate_qps: 1.0 },
            duration_s: 5.0,
            violation_tolerance: 0.01,
            min_qps: 2.0,
            max_qps: 20_000.0,
            refine_steps: 7,
            seed: 42,
            early_exit: true,
        }
    }
}

impl CapacityOptions {
    /// Convenience: default options with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Result of a capacity search.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// Largest sustained rate that met QoS (queries per second); 0 when even
    /// the minimum probe rate violated the target.
    pub allowable_qps: f64,
    /// Number of simulation probes performed.
    pub probes: usize,
}

/// Checks whether the configuration sustains the given arrival rate within QoS.
pub fn sustains_rate<F>(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    options: &CapacityOptions,
    rate_qps: f64,
    make_scheduler: &mut F,
) -> bool
where
    F: FnMut() -> Box<dyn Scheduler>,
{
    let spec = TraceSpec {
        arrival: options.arrival.with_rate(rate_qps),
        batch_sizes: options.batch_sizes.clone(),
        duration_s: options.duration_s,
        seed: options.seed,
    };
    let trace = spec.generate();
    if trace.is_empty() {
        return true;
    }
    let ctx = SimContext::with_options(
        pool,
        service,
        &trace,
        SimulationOptions { seed: options.seed },
    );
    let mut scheduler = make_scheduler();
    if options.early_exit {
        ctx.probe_qos(config, scheduler.as_mut(), options.violation_tolerance)
    } else {
        let report = ctx.run(config, scheduler.as_mut());
        report.meets_qos(options.violation_tolerance)
    }
}

/// Finds the allowable throughput of `(pool, config, scheduler)` for the given
/// service and workload by ramping the arrival rate.
pub fn allowable_throughput<F>(
    pool: &PoolSpec,
    config: &Config,
    service: &ServiceSpec,
    options: &CapacityOptions,
    mut make_scheduler: F,
) -> CapacityResult
where
    F: FnMut() -> Box<dyn Scheduler>,
{
    assert!(
        options.min_qps > 0.0 && options.max_qps > options.min_qps,
        "invalid rate bounds"
    );
    let mut probes = 0usize;

    // A configuration with no instances serves nothing.
    if config.total_instances() == 0 {
        return CapacityResult {
            allowable_qps: 0.0,
            probes,
        };
    }

    // Probe the minimum rate first.
    probes += 1;
    if !sustains_rate(
        pool,
        config,
        service,
        options,
        options.min_qps,
        &mut make_scheduler,
    ) {
        return CapacityResult {
            allowable_qps: 0.0,
            probes,
        };
    }

    // Geometric ramp until failure or the cap.
    let mut good = options.min_qps;
    let mut bad = None;
    let mut rate = options.min_qps * 2.0;
    while rate <= options.max_qps {
        probes += 1;
        if sustains_rate(pool, config, service, options, rate, &mut make_scheduler) {
            good = rate;
            rate *= 2.0;
        } else {
            bad = Some(rate);
            break;
        }
    }

    let Some(mut bad) = bad else {
        // Never failed below the cap; report the last sustained rate.
        return CapacityResult {
            allowable_qps: good,
            probes,
        };
    };

    // Bisection refinement between the last good and first bad rates.
    for _ in 0..options.refine_steps {
        let mid = (good + bad) / 2.0;
        probes += 1;
        if sustains_rate(pool, config, service, options, mid, &mut make_scheduler) {
            good = mid;
        } else {
            bad = mid;
        }
    }

    CapacityResult {
        allowable_qps: good,
        probes,
    }
}

/// Memo key of one capacity ramp: a fingerprint of the pool's interned type
/// names plus the configuration's instance counts.  The fingerprint pins
/// every entry to the pool it was measured on (so keys remain meaningful if
/// a memo ever outlives a prober) without cloning the name vector into each
/// key — it is hashed once per prober, not once per lookup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CapacityKey {
    pool_fingerprint: u64,
    counts: Vec<usize>,
}

/// A capacity-search session over one `(pool, service, workload)`: runs
/// allowable-throughput ramps with a shared per-configuration memo, so
/// sweeping overlapping candidate sets (as the serving loop's repeated
/// replans do) only simulates each configuration once.
///
/// The memo is internally synchronized; [`CapacityProber::throughput_many`]
/// fans candidates out over rayon and all workers share it.
pub struct CapacityProber<'a> {
    pool: &'a PoolSpec,
    service: &'a ServiceSpec,
    options: CapacityOptions,
    pool_fingerprint: u64,
    cache: Mutex<HashMap<CapacityKey, CapacityResult>>,
}

impl<'a> CapacityProber<'a> {
    /// Creates a prober for one pool/service/workload combination.
    pub fn new(pool: &'a PoolSpec, service: &'a ServiceSpec, options: CapacityOptions) -> Self {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for ty in pool.types() {
            ty.name.hash(&mut hasher);
        }
        Self {
            pool,
            service,
            options,
            pool_fingerprint: hasher.finish(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The capacity-search options in effect.
    pub fn options(&self) -> &CapacityOptions {
        &self.options
    }

    /// Number of memoized configurations.
    pub fn cached(&self) -> usize {
        self.cache.lock().expect("capacity memo poisoned").len()
    }

    fn key(&self, config: &Config) -> CapacityKey {
        CapacityKey {
            pool_fingerprint: self.pool_fingerprint,
            counts: config.counts().to_vec(),
        }
    }

    /// Allowable throughput of one configuration, served from the memo when
    /// this prober has ramped it before.
    pub fn throughput<F>(&self, config: &Config, make_scheduler: F) -> CapacityResult
    where
        F: Fn() -> Box<dyn Scheduler>,
    {
        let key = self.key(config);
        if let Some(hit) = self.cache.lock().expect("capacity memo poisoned").get(&key) {
            return hit.clone();
        }
        let result = allowable_throughput(
            self.pool,
            config,
            self.service,
            &self.options,
            &make_scheduler,
        );
        self.cache
            .lock()
            .expect("capacity memo poisoned")
            .insert(key, result.clone());
        result
    }

    /// Allowable throughput of every candidate (rayon fan-out, shared memo).
    /// Results are returned in candidate order.
    ///
    /// Duplicate candidates are collapsed *before* the fan-out: the memo's
    /// check-then-insert is not an in-flight reservation, so two workers
    /// racing on the same configuration would otherwise both ramp it.
    pub fn throughput_many<F>(&self, configs: &[Config], make_scheduler: F) -> Vec<CapacityResult>
    where
        F: Fn() -> Box<dyn Scheduler> + Sync,
    {
        let mut first_of: HashMap<&Config, usize> = HashMap::with_capacity(configs.len());
        let mut unique: Vec<&Config> = Vec::with_capacity(configs.len());
        let slots: Vec<usize> = configs
            .iter()
            .map(|config| {
                *first_of.entry(config).or_insert_with(|| {
                    unique.push(config);
                    unique.len() - 1
                })
            })
            .collect();
        let results: Vec<CapacityResult> = unique
            .par_iter()
            .map(|config| self.throughput(config, &make_scheduler))
            .collect();
        slots.into_iter().map(|s| results[s].clone()).collect()
    }

    /// Ranks candidates by *measured* allowable throughput, highest first —
    /// the simulation-backed counterpart of the planner's closed-form
    /// `rank_configs`, sharing this prober's memo across calls.
    pub fn rank_measured<F>(&self, configs: &[Config], make_scheduler: F) -> Vec<(Config, f64)>
    where
        F: Fn() -> Box<dyn Scheduler> + Sync,
    {
        let results = self.throughput_many(configs, make_scheduler);
        let mut ranked: Vec<(Config, f64)> = configs
            .iter()
            .cloned()
            .zip(results.into_iter().map(|r| r.allowable_qps))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite throughput"));
        ranked
    }
}

/// Runs [`allowable_throughput`] for every candidate configuration in
/// parallel (rayon fan-out).  Each candidate's ramp is an independent
/// read-only evaluation over the shared pool/service/options, so this is the
/// sweep primitive the planner comparisons and baseline grid searches use.
/// Results are returned in candidate order.
pub fn allowable_throughput_many<F>(
    pool: &PoolSpec,
    configs: &[Config],
    service: &ServiceSpec,
    options: &CapacityOptions,
    make_scheduler: F,
) -> Vec<CapacityResult>
where
    F: Fn() -> Box<dyn Scheduler> + Sync,
{
    CapacityProber::new(pool, service, options.clone()).throughput_many(configs, make_scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, mlmodel::ModelKind};

    fn quick_options() -> CapacityOptions {
        CapacityOptions {
            duration_s: 1.0,
            refine_steps: 4,
            max_qps: 4_000.0,
            ..CapacityOptions::default()
        }
    }

    fn fcfs_factory() -> Box<dyn Scheduler> {
        Box::new(FcfsScheduler::new())
    }

    #[test]
    fn empty_configuration_has_zero_capacity() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let result = allowable_throughput(
            &pool,
            &Config::new(vec![0, 0, 0, 0]),
            &service,
            &quick_options(),
            fcfs_factory,
        );
        assert_eq!(result.allowable_qps, 0.0);
    }

    #[test]
    fn auxiliary_only_configuration_cannot_serve_large_queries() {
        // r5n.large alone cannot serve the near-cap WND queries within 25 ms,
        // so the standalone allowable throughput is 0 (paper Sec. 4).
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let mut opts = quick_options();
        opts.batch_sizes = BatchSizeDistribution::Uniform {
            min: 500,
            max: 1000,
        };
        let result = allowable_throughput(
            &pool,
            &Config::new(vec![0, 0, 4, 0]),
            &service,
            &opts,
            fcfs_factory,
        );
        assert_eq!(result.allowable_qps, 0.0);
    }

    #[test]
    fn parallel_sweep_matches_sequential_ramps() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let opts = quick_options();
        let configs = vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![0, 0, 0, 0]),
            Config::new(vec![2, 0, 1, 0]),
        ];
        let swept = allowable_throughput_many(&pool, &configs, &service, &opts, fcfs_factory);
        assert_eq!(swept.len(), configs.len());
        for (config, result) in configs.iter().zip(&swept) {
            let reference = allowable_throughput(&pool, config, &service, &opts, fcfs_factory);
            assert_eq!(
                result.allowable_qps, reference.allowable_qps,
                "config {config}"
            );
            assert_eq!(result.probes, reference.probes);
        }
    }

    #[test]
    fn early_exit_ramp_matches_exhaustive_ramp() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let fast_opts = quick_options();
        assert!(fast_opts.early_exit);
        let slow_opts = CapacityOptions {
            early_exit: false,
            ..quick_options()
        };
        for config in [
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![1, 0, 2, 0]),
            Config::new(vec![2, 1, 0, 0]),
        ] {
            let fast = allowable_throughput(&pool, &config, &service, &fast_opts, fcfs_factory);
            let slow = allowable_throughput(&pool, &config, &service, &slow_opts, fcfs_factory);
            assert_eq!(
                fast.allowable_qps, slow.allowable_qps,
                "early exit changed the verdict for {config}"
            );
            assert_eq!(fast.probes, slow.probes);
        }
    }

    #[test]
    fn prober_memoizes_repeat_configurations() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let prober = CapacityProber::new(&pool, &service, quick_options());
        let configs = vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![1, 0, 2, 0]),
            Config::new(vec![1, 0, 0, 0]), // duplicate within one sweep
        ];
        let first = prober.throughput_many(&configs, fcfs_factory);
        assert_eq!(prober.cached(), 2, "duplicates share one ramp");
        assert_eq!(first[0].allowable_qps, first[2].allowable_qps);
        // A later overlapping sweep reuses every prior ramp.
        let second = prober.throughput(&configs[1], fcfs_factory);
        assert_eq!(second.allowable_qps, first[1].allowable_qps);
        assert_eq!(prober.cached(), 2);
        // Memoized results equal fresh computation.
        let fresh = allowable_throughput(&pool, &configs[0], &service, &quick_options(), || {
            Box::new(FcfsScheduler::new()) as Box<dyn Scheduler>
        });
        assert_eq!(first[0].allowable_qps, fresh.allowable_qps);
    }

    #[test]
    fn rank_measured_sorts_descending() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let prober = CapacityProber::new(&pool, &service, quick_options());
        let configs = vec![
            Config::new(vec![0, 0, 0, 0]),
            Config::new(vec![2, 0, 0, 0]),
            Config::new(vec![1, 0, 0, 0]),
        ];
        let ranked = prober.rank_measured(&configs, fcfs_factory);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(ranked[0].0, Config::new(vec![2, 0, 0, 0]));
        assert_eq!(ranked[2].1, 0.0);
    }

    #[test]
    fn more_gpus_give_more_capacity() {
        let pool = PoolSpec::new(ec2::paper_pool());
        let service = ServiceSpec::new(ModelKind::Wnd, paper_calibration());
        let opts = quick_options();
        let one = allowable_throughput(
            &pool,
            &Config::new(vec![1, 0, 0, 0]),
            &service,
            &opts,
            fcfs_factory,
        );
        let two = allowable_throughput(
            &pool,
            &Config::new(vec![2, 0, 0, 0]),
            &service,
            &opts,
            fcfs_factory,
        );
        assert!(one.allowable_qps > 0.0);
        assert!(
            two.allowable_qps > one.allowable_qps * 1.4,
            "2 GPUs ({}) should clearly beat 1 GPU ({})",
            two.allowable_qps,
            one.allowable_qps
        );
        assert!(one.probes > 2);
    }
}

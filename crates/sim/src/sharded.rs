//! Sharded multi-model simulation: one [`SimEngine`] per model lane, fanned
//! out over rayon workers, merged back into one bit-identical report.
//!
//! # Why the model lane is the shard boundary
//!
//! A multi-model [`ClusterSpec`] binds disjoint
//! sub-clusters to models, the engine rejects cross-model dispatches, and a
//! work-conserving idle-dispatch policy (FCFS) leaves no
//! (queued query, idle instance) pair of any model unmatched after a
//! scheduling round.  Under those rules lane `m`'s state — its queued
//! queries, its instances, its completions — can only change at lane-`m`
//! events: the combined engine's extra scheduler consultations at *other*
//! lanes' events are provable no-ops for lane `m`.  So replaying each lane's
//! sub-trace against its own sub-cluster on its own worker visits exactly
//! the per-lane event sequence of the combined run, and the merged report is
//! **bit-identical** to [`SimEngine::new_multi`] regardless of thread count
//! or shard order (pinned by `tests/proptest_multimodel.rs`).
//!
//! Three engine-side invariants make the merge exact:
//!
//! * **Per-model RNG streams** ([`model_stream_seed`](crate::engine::model_stream_seed)) —
//!   service-time noise for lane `m` is drawn from stream `m` in both the
//!   combined and the sharded run.
//! * **Canonical report order** — multi-model reports sort records and
//!   unfinished queries by a total key, so same-microsecond ties across
//!   lanes land identically however the lanes interleaved.
//! * **Per-model billing partials** ([`SimReport::billed_by_model`]) —
//!   shards bill disjoint model slots and the total is re-derived as a fold,
//!   sidestepping f64 re-association entirely.
//!
//! Policies that dispatch into *busy* instances' local queues (Clockwork-
//! style latency matching) do not carry the no-op guarantee — their
//! decisions can depend on when the scheduler was consulted — so the
//! sharded path takes a per-lane scheduler factory and leaves such policies
//! to the combined engine.  Cross-shard work stealing is likewise out of
//! scope: migrating a query between lanes would violate the model binding
//! the dispatch validation enforces (see DESIGN.md).
//!
//! Markets are not supported: price steps and preemption storms are global
//! events that couple every lane's billing and kill schedule.  Fault
//! processes ([`SimEngine::with_faults`]) are excluded for the same reason —
//! a zone outage or capacity shortage spans every lane placed in the domain.

use crate::cluster::{ClusterSpec, ModelPool, ServiceSpec};
use crate::engine::{SimEngine, SimulationOptions};
use crate::flex::{BatchingOptions, SharingMode, SharingOptions};
use crate::scheduler::Scheduler;
use crate::stats::SimReport;
use kairos_models::market::billed_dollars;
use kairos_models::PoolSpec;
use kairos_workload::{ModelId, Trace};
use rayon::prelude::*;

/// A multi-model simulation partitioned into per-model-lane shards, each
/// replayed on its own rayon worker and merged through [`SimReport::merge`].
///
/// ```
/// use kairos_models::{calibration::paper_calibration, ec2, Config, ModelKind, PoolSpec};
/// use kairos_sim::{ClusterSpec, FcfsScheduler, ServiceSpec, ShardedEngine, SimulationOptions};
/// use kairos_workload::{BatchSizeDistribution, MixSpec, MixedTraceSpec};
///
/// let pool = PoolSpec::new(ec2::paper_pool());
/// let services = [
///     ServiceSpec::new(ModelKind::Ncf, paper_calibration()),
///     ServiceSpec::new(ModelKind::Wnd, paper_calibration()),
/// ];
/// let svc_refs: Vec<&ServiceSpec> = services.iter().collect();
/// let spec = ClusterSpec::from_configs(vec![
///     Config::new(vec![1, 0, 0, 0]),
///     Config::new(vec![1, 0, 1, 0]),
/// ]);
/// let mix = MixSpec::from_shares(
///     &[0.5, 0.5],
///     &[BatchSizeDistribution::Fixed(8), BatchSizeDistribution::Fixed(8)],
/// );
/// let trace = MixedTraceSpec::poisson(80.0, mix, 1.0, 7).generate();
/// let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &SimulationOptions::default());
/// let report = sharded.run(&trace, |_| Box::new(FcfsScheduler::new()));
/// assert_eq!(report.offered, trace.len());
/// ```
pub struct ShardedEngine<'a> {
    pool: &'a PoolSpec,
    spec: &'a ClusterSpec,
    services: Vec<&'a ServiceSpec>,
    options: SimulationOptions,
    sharing: Option<SharingOptions>,
    batching: Option<BatchingOptions>,
}

/// One shard's inputs: a single-slice cluster spec, the lane's sub-trace,
/// and the lane's offset into the combined model-major instance index space.
struct ShardJob {
    slice: ModelPool,
    sub: Trace,
    offset: usize,
}

impl<'a> ShardedEngine<'a> {
    /// Builds a sharded engine over the same inputs as
    /// [`SimEngine::new_multi`] (minus the trace and scheduler, which are
    /// per-run / per-shard).
    ///
    /// # Panics
    /// Panics if a spec slice binds a model with no entry in `services`.
    pub fn new(
        pool: &'a PoolSpec,
        spec: &'a ClusterSpec,
        services: &[&'a ServiceSpec],
        options: &SimulationOptions,
    ) -> Self {
        assert!(
            spec.model_table_len() <= services.len(),
            "cluster spec binds model {} but only {} services are given",
            spec.model_table_len() - 1,
            services.len()
        );
        Self {
            pool,
            spec,
            services: services.to_vec(),
            options: *options,
            sharing: None,
            batching: None,
        }
    }

    /// Enables fair throughput sharing on every shard engine (see
    /// [`SimEngine::with_sharing`]).  [`SharingMode::None`] is a no-op, so
    /// the sharded path keeps its exact-replay contract in both modes.
    /// Sharing state is strictly per-instance and lanes own disjoint
    /// instances, so the combined-vs-sharded bit-identity argument in the
    /// module docs carries over unchanged (pinned by
    /// `tests/proptest_flex.rs`).
    #[must_use]
    pub fn with_sharing(mut self, mode: SharingMode) -> Self {
        self.sharing = match mode {
            SharingMode::None => None,
            SharingMode::Fair(options) => Some(options),
        };
        self
    }

    /// Enables the per-instance dynamic batcher on every shard engine (see
    /// [`SimEngine::with_batching`]).
    #[must_use]
    pub fn with_batching(mut self, options: BatchingOptions) -> Self {
        self.batching = Some(options);
        self
    }

    /// Replays `trace` sharded by model lane, one engine per
    /// [`ModelPool`] slice on its own rayon worker (`make_scheduler(m)`
    /// supplies each lane's policy — a fresh FCFS-style work-conserving
    /// idle-dispatch scheduler per shard), and returns the merged report.
    /// Thread count is governed by the ambient rayon pool
    /// (`ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(..)`
    /// to pin it); the result is bit-identical at every thread count.
    ///
    /// Models that appear in the trace without a cluster slice are replayed
    /// as queue-only shards (every query unfinished), exactly as the
    /// combined engine leaves them.
    ///
    /// # Panics
    /// Panics if a trace query's model has no entry in `services`.
    pub fn run<F>(&self, trace: &Trace, make_scheduler: F) -> SimReport
    where
        F: Fn(ModelId) -> Box<dyn Scheduler> + Sync,
    {
        let n = self.services.len();
        let mut subs = trace.split_by_model(n);
        let empty_trace = || Trace {
            spec: None,
            queries: Vec::new(),
        };

        let mut jobs: Vec<ShardJob> = Vec::with_capacity(self.spec.pools.len());
        let mut has_slice = vec![false; n];
        let mut offset = 0usize;
        for slice in &self.spec.pools {
            let m = slice.model.index();
            has_slice[m] = true;
            jobs.push(ShardJob {
                slice: slice.clone(),
                sub: std::mem::replace(&mut subs[m], empty_trace()),
                offset,
            });
            offset += slice.config.total_instances();
        }

        // Fan out: one allocation-free hot loop per lane, on its own
        // worker.  Each shard engine gets the full service table, so model
        // bindings, QoS tables and RNG streams stay index-aligned with the
        // combined engine.  Jobs are consumed so each lane's sub-trace is
        // freed the moment its replay finishes — on multi-gigabyte runs
        // that memory is recycled by the lanes still running.
        let mut outcomes: Vec<(ModelPool, usize, SimReport)> = jobs
            .par_iter_mut()
            .map(|job| {
                let sub = std::mem::replace(&mut job.sub, empty_trace());
                let shard_spec = ClusterSpec::new(vec![job.slice.clone()]);
                let mut scheduler = make_scheduler(job.slice.model);
                let mut engine = SimEngine::new_multi(
                    self.pool,
                    &shard_spec,
                    &self.services,
                    &sub,
                    scheduler.as_mut(),
                    &self.options,
                );
                if let Some(options) = &self.sharing {
                    engine = engine.with_sharing(SharingMode::Fair(options.clone()));
                }
                if let Some(options) = self.batching {
                    engine = engine.with_batching(options);
                }
                let report = engine.run();
                drop(sub);
                (job.slice.clone(), job.offset, report)
            })
            .collect();

        // The global horizon: the latest event of any shard, clamped to the
        // full trace span (a sliceless model's trailing arrival is an event
        // of the combined run too).
        let mut horizon_us = trace.duration_us();
        for (_, _, report) in &outcomes {
            horizon_us = horizon_us.max(report.horizon_us);
        }
        for (m, sub) in subs.iter().enumerate() {
            if !has_slice[m] {
                horizon_us = horizon_us.max(sub.duration_us());
            }
        }

        // Finalize each shard against the global horizon: remap its
        // instance indices into the combined model-major layout and re-bill
        // its slice through the merged horizon — the exact per-instance
        // constant-price integral, accumulated in the exact index order,
        // that the combined engine's settlement loop performs at *its*
        // report time.
        let mut shards: Vec<SimReport> = Vec::with_capacity(outcomes.len() + n);
        for (slice, offset, mut report) in outcomes.drain(..) {
            if offset != 0 {
                for record in &mut report.records {
                    record.instance_index += offset;
                }
            }
            report.horizon_us = horizon_us;
            let mut billed_by_model = vec![0.0; n];
            let mut partial = 0.0;
            for (type_index, &count) in slice.config.counts().iter().enumerate() {
                for _ in 0..count {
                    partial += billed_dollars(self.pool.price(type_index), 0, horizon_us);
                }
            }
            billed_by_model[slice.model.index()] = partial;
            report.billed_dollars = billed_by_model.iter().fold(0.0, |acc, &b| acc + b);
            report.billed_by_model = billed_by_model;
            shards.push(report);
        }

        // Queue-only shards for models with traffic but no instances: every
        // query stays unfinished, just as in the combined engine.
        for (m, sub) in subs.iter().enumerate() {
            if has_slice[m] || sub.is_empty() {
                continue;
            }
            shards.push(SimReport {
                scheduler: make_scheduler(ModelId::new(m)).name().to_string(),
                records: Vec::new(),
                unfinished: sub
                    .queries
                    .iter()
                    .map(|q| crate::stats::UnfinishedQuery {
                        id: q.id,
                        model: q.model,
                        batch_size: q.batch_size,
                        arrival_us: q.arrival_us,
                    })
                    .collect(),
                offered: sub.len(),
                horizon_us,
                qos_us: self.services[0].qos_us(),
                qos_by_model: self.services.iter().map(|s| s.qos_us()).collect(),
                billed_dollars: 0.0,
                billed_by_model: vec![0.0; n],
                accuracy_sum_by_model: vec![0.0; n],
                events_processed: sub.len() as u64,
                preemption_notices: 0,
                preempted_instances: 0,
                requeued_queries: 0,
                rejected_purchases: 0,
                straggler_onsets: 0,
                outages: Vec::new(),
                service: crate::stats::ServiceStats::default(),
            });
        }

        // Release the sliceless sub-traces before the merge allocates its
        // output, then one k-way pass over every shard, bit-identical to
        // the pairwise fold in the same order (see `SimReport::merge_many`).
        drop(subs);
        SimReport::merge_many(shards).expect("a cluster spec has at least one slice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FcfsScheduler;
    use kairos_models::{calibration::paper_calibration, ec2, Config, ModelKind};
    use kairos_workload::{BatchSizeDistribution, MixSpec, MixedTraceSpec, Query};

    fn services() -> Vec<ServiceSpec> {
        [ModelKind::Ncf, ModelKind::Wnd, ModelKind::Rm2]
            .iter()
            .map(|&k| ServiceSpec::new(k, paper_calibration()))
            .collect()
    }

    fn fcfs(_: ModelId) -> Box<dyn Scheduler> {
        Box::new(FcfsScheduler::new())
    }

    /// Field-wise bit-equality against the combined engine.
    fn assert_matches_combined(spec: &ClusterSpec, trace: &Trace, seed: u64) {
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services();
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed };
        let mut scheduler = FcfsScheduler::new();
        let combined =
            SimEngine::new_multi(&pool, spec, &svc_refs, trace, &mut scheduler, &opts).run();
        let sharded = ShardedEngine::new(&pool, spec, &svc_refs, &opts).run(trace, fcfs);
        assert_eq!(combined.scheduler, sharded.scheduler);
        assert_eq!(combined.records, sharded.records);
        assert_eq!(combined.unfinished, sharded.unfinished);
        assert_eq!(combined.offered, sharded.offered);
        assert_eq!(combined.horizon_us, sharded.horizon_us);
        assert_eq!(combined.qos_us, sharded.qos_us);
        assert_eq!(combined.qos_by_model, sharded.qos_by_model);
        assert_eq!(
            combined.billed_dollars.to_bits(),
            sharded.billed_dollars.to_bits()
        );
        assert_eq!(
            combined.billed_by_model.len(),
            sharded.billed_by_model.len()
        );
        for (a, b) in combined
            .billed_by_model
            .iter()
            .zip(&sharded.billed_by_model)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(combined.events_processed, sharded.events_processed);
        assert_eq!(combined.service, sharded.service);
    }

    fn flex_knobs() -> (SharingMode, BatchingOptions) {
        use kairos_models::ThroughputDegradation;
        (
            SharingMode::Fair(
                SharingOptions::uniform(ThroughputDegradation::try_new_linear(0.1).unwrap())
                    .with_max_concurrency(4),
            ),
            BatchingOptions::new(256, 2_000),
        )
    }

    #[test]
    fn sharded_flex_run_matches_the_combined_engine_bit_for_bit() {
        let mix = MixSpec::from_shares(
            &[0.4, 0.35, 0.25],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::gaussian_default(),
                BatchSizeDistribution::Fixed(64),
            ],
        );
        let trace = MixedTraceSpec::poisson(500.0, mix, 2.0, 13).generate();
        let spec = ClusterSpec::from_configs(vec![
            Config::new(vec![1, 0, 1, 0]),
            Config::new(vec![2, 0, 0, 0]),
            Config::new(vec![1, 1, 1, 1]),
        ]);
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services();
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed: 13 };
        let (sharing, batching) = flex_knobs();
        let mut scheduler = FcfsScheduler::new();
        let combined = SimEngine::new_multi(&pool, &spec, &svc_refs, &trace, &mut scheduler, &opts)
            .with_sharing(sharing.clone())
            .with_batching(batching)
            .run();
        let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts)
            .with_sharing(sharing)
            .with_batching(batching)
            .run(&trace, fcfs);
        assert_eq!(combined.records, sharded.records);
        assert_eq!(combined.unfinished, sharded.unfinished);
        assert_eq!(combined.horizon_us, sharded.horizon_us);
        assert_eq!(
            combined.billed_dollars.to_bits(),
            sharded.billed_dollars.to_bits()
        );
        assert_eq!(combined.events_processed, sharded.events_processed);
        assert_eq!(combined.service, sharded.service);
        assert!(
            combined.service.batches_fired > 0,
            "the batcher must engage"
        );
    }

    #[test]
    fn thread_count_does_not_change_the_flex_report() {
        let mix = MixSpec::from_shares(
            &[0.5, 0.3, 0.2],
            &[
                BatchSizeDistribution::Fixed(8),
                BatchSizeDistribution::Fixed(32),
                BatchSizeDistribution::Fixed(128),
            ],
        );
        let trace = MixedTraceSpec::poisson(600.0, mix, 1.0, 17).generate();
        let spec = ClusterSpec::from_configs(vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![1, 0, 1, 0]),
            Config::new(vec![1, 0, 0, 1]),
        ]);
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services();
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed: 17 };
        let (sharing, batching) = flex_knobs();
        let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts)
            .with_sharing(sharing)
            .with_batching(batching);
        let reference = sharded.run(&trace, fcfs);
        assert!(
            reference.service.batches_fired > 0,
            "the batcher must engage"
        );
        for threads in [1usize, 2, 4, 8] {
            let pool_n = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = pool_n.install(|| sharded.run(&trace, fcfs));
            assert_eq!(reference.records, report.records);
            assert_eq!(reference.unfinished, report.unfinished);
            assert_eq!(reference.horizon_us, report.horizon_us);
            assert_eq!(
                reference.billed_dollars.to_bits(),
                report.billed_dollars.to_bits()
            );
            assert_eq!(reference.events_processed, report.events_processed);
            assert_eq!(reference.service, report.service);
        }
    }

    #[test]
    fn sharded_run_matches_the_combined_engine_bit_for_bit() {
        let mix = MixSpec::from_shares(
            &[0.4, 0.35, 0.25],
            &[
                BatchSizeDistribution::production_default(),
                BatchSizeDistribution::gaussian_default(),
                BatchSizeDistribution::Fixed(64),
            ],
        );
        let trace = MixedTraceSpec::poisson(400.0, mix, 2.0, 11).generate();
        let spec = ClusterSpec::from_configs(vec![
            Config::new(vec![1, 0, 1, 0]),
            Config::new(vec![2, 0, 0, 0]),
            Config::new(vec![1, 1, 1, 1]),
        ]);
        assert_matches_combined(&spec, &trace, 11);
    }

    #[test]
    fn models_without_instances_surface_as_unfinished_exactly_like_the_combined_run() {
        // Model 2 has traffic but no slice: every one of its queries must be
        // reported unfinished with the combined engine's horizon.
        let queries = vec![
            Query::for_model(0, ModelId::new(0), 8, 1_000),
            Query::for_model(1, ModelId::new(2), 4, 2_000),
            Query::for_model(2, ModelId::new(0), 8, 3_000),
            Query::for_model(3, ModelId::new(2), 2, 9_000_000),
        ];
        let trace = Trace::from_queries(queries);
        let spec = ClusterSpec::new(vec![ModelPool {
            model: ModelId::new(0),
            config: Config::new(vec![1, 0, 0, 0]),
        }]);
        assert_matches_combined(&spec, &trace, 3);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let mix = MixSpec::from_shares(
            &[0.5, 0.3, 0.2],
            &[
                BatchSizeDistribution::Fixed(8),
                BatchSizeDistribution::Fixed(32),
                BatchSizeDistribution::Fixed(128),
            ],
        );
        let trace = MixedTraceSpec::poisson(300.0, mix, 1.0, 5).generate();
        let spec = ClusterSpec::from_configs(vec![
            Config::new(vec![1, 0, 0, 0]),
            Config::new(vec![1, 0, 1, 0]),
            Config::new(vec![1, 0, 0, 1]),
        ]);
        let pool = PoolSpec::new(ec2::paper_pool());
        let svc = services();
        let svc_refs: Vec<&ServiceSpec> = svc.iter().collect();
        let opts = SimulationOptions { seed: 5 };
        let sharded = ShardedEngine::new(&pool, &spec, &svc_refs, &opts);
        let reference = sharded.run(&trace, fcfs);
        for threads in [1usize, 2, 4, 8] {
            let pool_n = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let report = pool_n.install(|| sharded.run(&trace, fcfs));
            assert_eq!(reference.records, report.records);
            assert_eq!(reference.unfinished, report.unfinished);
            assert_eq!(reference.horizon_us, report.horizon_us);
            assert_eq!(
                reference.billed_dollars.to_bits(),
                report.billed_dollars.to_bits()
            );
            assert_eq!(reference.events_processed, report.events_processed);
        }
    }
}
